//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is a set of time windows during which some part of the
//! simulated server misbehaves: a link goes down or degrades, a GPU crashes,
//! the DRAM path congests, or the coordinator stalls. Plans are built either
//! by explicit scheduling (chainable builders) or from a seed
//! ([`FaultPlan::randomized`]), so chaos runs are exactly as reproducible as
//! fault-free ones — the same plan plus the same workload seed yields a
//! byte-identical telemetry journal.
//!
//! The plan itself is passive: components *query* it. The transfer engine
//! asks [`FaultPlan::port_down`] / [`FaultPlan::port_slowdown`] /
//! [`FaultPlan::first_outage_in`] when scheduling, the offloader asks
//! [`FaultPlan::coordinator_stall`] at iteration boundaries, and the engine
//! driver replays GPU-crash windows as paused engines. This keeps fault
//! state out of every component's mutable state and makes a chaos run a pure
//! function of `(workload seed, FaultPlan)`.

use crate::gpu::GpuId;
use crate::time::{SimDuration, SimTime};
use crate::topology::PortId;
use aqua_telemetry::{trace, SharedTracer, TraceEvent};

/// What breaks during a fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A directional port carries no traffic at all.
    LinkDown {
        /// The dead port.
        port: PortId,
    },
    /// A directional port runs `slowdown`× slower than modelled.
    LinkDegraded {
        /// The degraded port.
        port: PortId,
        /// Wire-time multiplier (> 1.0 means slower).
        slowdown: f64,
    },
    /// A GPU is dead: every port touching it is down and its engine makes
    /// no progress (the driver pauses it).
    GpuCrash {
        /// The crashed GPU.
        gpu: GpuId,
    },
    /// Host-DRAM PCIe paths (both directions, all GPUs) run slower.
    DramCongestion {
        /// Wire-time multiplier for PCIe transfers.
        slowdown: f64,
    },
    /// Every coordinator round-trip costs `extra` additional latency.
    CoordinatorStall {
        /// Added latency per iteration-boundary control exchange.
        extra: SimDuration,
    },
    /// The coordinator process crashes at the window start, losing its
    /// in-memory lease book, and finishes rebuilding at the window end
    /// (the window length is the rebuild delay). While the window is
    /// active the coordinator is unreachable from every GPU.
    CoordinatorCrash,
    /// The control-plane network splits in two: GPUs with index `< split`
    /// stay connected to the coordinator (group A), GPUs with index
    /// `>= split` are cut off (group B) until the window end heals the
    /// partition. The split index is a compact, `Copy` encoding of the
    /// two groups — scale-up domains number GPUs densely, so a threshold
    /// expresses every contiguous split the experiments need.
    Partition {
        /// First GPU index on the far side of the partition.
        split: usize,
    },
}

impl FaultKind {
    /// Stable kind label used in trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link-down",
            FaultKind::LinkDegraded { .. } => "link-degraded",
            FaultKind::GpuCrash { .. } => "gpu-crash",
            FaultKind::DramCongestion { .. } => "dram-congestion",
            FaultKind::CoordinatorStall { .. } => "coordinator-stall",
            FaultKind::CoordinatorCrash => "coordinator-crash",
            FaultKind::Partition { .. } => "partition",
        }
    }

    /// Stable target label used in trace events.
    pub fn target(&self) -> String {
        match self {
            FaultKind::LinkDown { port } => port.to_string(),
            FaultKind::LinkDegraded { port, .. } => port.to_string(),
            FaultKind::GpuCrash { gpu } => gpu.to_string(),
            FaultKind::DramCongestion { .. } => "dram".to_owned(),
            FaultKind::CoordinatorStall { .. } | FaultKind::CoordinatorCrash => {
                "coordinator".to_owned()
            }
            FaultKind::Partition { split } => format!("split@{split}"),
        }
    }
}

/// One fault active over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// What breaks.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl FaultWindow {
    /// Whether the window covers `at`.
    pub fn active(&self, at: SimTime) -> bool {
        self.start <= at && at < self.end
    }
}

/// Parameters for [`FaultPlan::randomized`].
#[derive(Debug, Clone)]
pub struct RandomFaultProfile {
    /// Ports eligible for outage/degradation faults.
    pub link_ports: Vec<PortId>,
    /// GPUs eligible for crash faults.
    pub crash_gpus: Vec<GpuId>,
    /// Whether to draw control-plane faults too (coordinator crash and
    /// network partition).
    pub control_plane: bool,
    /// How many fault windows to draw.
    pub events: usize,
    /// Minimum window length.
    pub min_duration: SimDuration,
    /// Maximum window length.
    pub max_duration: SimDuration,
}

/// splitmix64 — tiny, seedable, and good enough for fault placement. The
/// sim crate deliberately has no RNG dependency; workload randomness lives
/// in `aqua-workloads`.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; 0 for a zero bound.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A reproducible schedule of fault windows.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    fn window(mut self, kind: FaultKind, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "fault window must have positive length");
        self.windows.push(FaultWindow { kind, start, end });
        self
    }

    /// Schedules a full outage of `port` over `[start, end)`.
    pub fn link_down(self, port: PortId, start: SimTime, end: SimTime) -> Self {
        self.window(FaultKind::LinkDown { port }, start, end)
    }

    /// Schedules a `slowdown`× degradation of `port` over `[start, end)`.
    pub fn link_degraded(self, port: PortId, slowdown: f64, start: SimTime, end: SimTime) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1.0");
        self.window(FaultKind::LinkDegraded { port, slowdown }, start, end)
    }

    /// Schedules a crash of `gpu` over `[start, end)`.
    pub fn gpu_crash(self, gpu: GpuId, start: SimTime, end: SimTime) -> Self {
        self.window(FaultKind::GpuCrash { gpu }, start, end)
    }

    /// Schedules DRAM-path congestion over `[start, end)`.
    pub fn dram_congestion(self, slowdown: f64, start: SimTime, end: SimTime) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1.0");
        self.window(FaultKind::DramCongestion { slowdown }, start, end)
    }

    /// Schedules added coordinator latency over `[start, end)`.
    pub fn coordinator_stall(self, extra: SimDuration, start: SimTime, end: SimTime) -> Self {
        self.window(FaultKind::CoordinatorStall { extra }, start, end)
    }

    /// Schedules a coordinator crash at `at`: the lease book is lost at the
    /// window start and the restarted process finishes its rebuild
    /// `rebuild_delay` later.
    pub fn coordinator_crash(self, at: SimTime, rebuild_delay: SimDuration) -> Self {
        self.window(FaultKind::CoordinatorCrash, at, at + rebuild_delay)
    }

    /// Schedules a control-plane partition over `[start, heal_at)`: GPUs
    /// with index `>= split` lose the coordinator until the heal.
    pub fn partition(self, split: usize, start: SimTime, heal_at: SimTime) -> Self {
        assert!(split > 0, "partition must leave the coordinator a side");
        self.window(FaultKind::Partition { split }, start, heal_at)
    }

    /// Schedules a flapping link: starting at `start`, `port` goes down for
    /// `duty_down` of every `period` until `end`.
    pub fn link_flap(
        mut self,
        port: PortId,
        start: SimTime,
        end: SimTime,
        period: SimDuration,
        duty_down: f64,
    ) -> Self {
        assert!(start < end, "flap window must have positive length");
        assert!(!period.is_zero(), "flap period must be positive");
        assert!(
            duty_down > 0.0 && duty_down < 1.0,
            "duty cycle must be in (0, 1)"
        );
        let down = SimDuration::from_secs_f64(period.as_secs_f64() * duty_down);
        let mut t = start;
        while t < end {
            let outage_end = (t + down).min(end);
            self = self.link_down(port, t, outage_end);
            t += period;
        }
        self
    }

    /// Draws `profile.events` fault windows from `seed` inside
    /// `[ZERO, horizon)`. Same seed + same profile → same plan.
    pub fn randomized(seed: u64, horizon: SimTime, profile: &RandomFaultProfile) -> Self {
        assert!(
            profile.min_duration <= profile.max_duration,
            "min_duration must not exceed max_duration"
        );
        let mut rng = FaultRng::new(seed);
        let mut plan = FaultPlan::new();
        let span = profile.max_duration.as_nanos() - profile.min_duration.as_nanos();
        for _ in 0..profile.events {
            let dur =
                SimDuration::from_nanos(profile.min_duration.as_nanos() + rng.next_range(span + 1));
            let latest_start = horizon.as_nanos().saturating_sub(dur.as_nanos());
            let start = SimTime::from_nanos(rng.next_range(latest_start + 1));
            let end = start + dur;
            // Kind index layout: the two always-available kinds first, then
            // the link pair, the GPU crash, and the control-plane pair —
            // each block present only when the profile enables it.
            let links = usize::from(!profile.link_ports.is_empty()) * 2;
            let gpus = usize::from(!profile.crash_gpus.is_empty());
            let n_kinds = 2 + links + gpus + usize::from(profile.control_plane) * 2;
            let k = rng.next_range(n_kinds as u64) as usize;
            plan = if k == 0 {
                plan.dram_congestion(2.0 + 6.0 * rng.next_f64(), start, end)
            } else if k == 1 {
                plan.coordinator_stall(SimDuration::from_millis(1 + rng.next_range(50)), start, end)
            } else if k < 2 + links {
                let port =
                    profile.link_ports[rng.next_range(profile.link_ports.len() as u64) as usize];
                if k == 2 {
                    plan.link_down(port, start, end)
                } else {
                    plan.link_degraded(port, 2.0 + 8.0 * rng.next_f64(), start, end)
                }
            } else if k < 2 + links + gpus {
                let gpu =
                    profile.crash_gpus[rng.next_range(profile.crash_gpus.len() as u64) as usize];
                plan.gpu_crash(gpu, start, end)
            } else if k == 2 + links + gpus {
                plan.coordinator_crash(start, dur)
            } else {
                plan.partition(1 + rng.next_range(4) as usize, start, end)
            };
        }
        plan
    }

    /// All scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Whether any fault window covers `at`.
    pub fn any_active(&self, at: SimTime) -> bool {
        self.windows.iter().any(|w| w.active(at))
    }

    fn port_gpu(port: PortId) -> GpuId {
        match port {
            PortId::NvlinkEgress(g)
            | PortId::NvlinkIngress(g)
            | PortId::PcieUp(g)
            | PortId::PcieDown(g) => g,
        }
    }

    fn outage_covers(kind: FaultKind, port: PortId) -> bool {
        match kind {
            FaultKind::LinkDown { port: p } => p == port,
            FaultKind::GpuCrash { gpu } => Self::port_gpu(port) == gpu,
            _ => false,
        }
    }

    /// Whether `port` carries no traffic at `at` (link outage or a crash of
    /// the GPU the port belongs to).
    pub fn port_down(&self, port: PortId, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.active(at) && Self::outage_covers(w.kind, port))
    }

    /// Wire-time multiplier on `port` at `at` (1.0 = nominal). Overlapping
    /// degradations take the worst multiplier, not the product.
    pub fn port_slowdown(&self, port: PortId, at: SimTime) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.active(at))
            .fold(1.0f64, |acc, w| match w.kind {
                FaultKind::LinkDegraded { port: p, slowdown } if p == port => acc.max(slowdown),
                FaultKind::DramCongestion { slowdown }
                    if matches!(port, PortId::PcieUp(_) | PortId::PcieDown(_)) =>
                {
                    acc.max(slowdown)
                }
                _ => acc,
            })
    }

    /// Earliest outage (link-down or GPU-crash) affecting `port` that begins
    /// strictly inside `(start, end)` — the cut point for an in-flight
    /// transfer occupying the port over that span.
    pub fn first_outage_in(&self, port: PortId, start: SimTime, end: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .filter(|w| Self::outage_covers(w.kind, port) && start < w.start && w.start < end)
            .map(|w| w.start)
            .min()
    }

    /// Added coordinator round-trip latency at `at` (ZERO when healthy).
    /// Overlapping stalls take the worst, not the sum.
    pub fn stall_at(&self, at: SimTime) -> SimDuration {
        self.windows
            .iter()
            .filter(|w| w.active(at))
            .filter_map(|w| match w.kind {
                FaultKind::CoordinatorStall { extra } => Some(extra),
                _ => None,
            })
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Whether a [`FaultKind::CoordinatorCrash`] window covers `at` (the
    /// coordinator process is down and rebuilding).
    pub fn coordinator_down(&self, at: SimTime) -> bool {
        self.windows
            .iter()
            .any(|w| w.active(at) && matches!(w.kind, FaultKind::CoordinatorCrash))
    }

    /// The active partition's split at `at`, if any. Overlapping partitions
    /// take the widest cut (the largest far side, i.e. the smallest split).
    pub fn partition_split(&self, at: SimTime) -> Option<usize> {
        self.windows
            .iter()
            .filter(|w| w.active(at))
            .filter_map(|w| match w.kind {
                FaultKind::Partition { split } => Some(split),
                _ => None,
            })
            .min()
    }

    /// Whether `gpu` can reach the coordinator at `at`: the coordinator
    /// process is up and no active partition puts the GPU on the far side.
    pub fn coordinator_reachable(&self, gpu: GpuId, at: SimTime) -> bool {
        !self.coordinator_down(at) && self.partition_split(at).is_none_or(|split| gpu.0 < split)
    }

    /// Journals every window as a [`TraceEvent::FaultInjected`] /
    /// [`TraceEvent::FaultCleared`] pair, in insertion order, so chaos runs
    /// are digest-checkable end to end.
    pub fn emit(&self, tracer: &SharedTracer) {
        if !tracer.enabled() {
            return;
        }
        for w in &self.windows {
            trace!(
                tracer,
                TraceEvent::FaultInjected {
                    kind: w.kind.label().to_owned(),
                    target: w.kind.target(),
                    at: w.start,
                }
            );
            trace!(
                tracer,
                TraceEvent::FaultCleared {
                    kind: w.kind.label().to_owned(),
                    target: w.kind.target(),
                    at: w.end,
                }
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn port_down_covers_links_and_crashed_gpus() {
        let egress = PortId::NvlinkEgress(GpuId(1));
        let ingress = PortId::NvlinkIngress(GpuId(1));
        let plan = FaultPlan::new()
            .link_down(egress, secs(10), secs(20))
            .gpu_crash(GpuId(0), secs(30), secs(40));
        assert!(!plan.port_down(egress, secs(9)));
        assert!(plan.port_down(egress, secs(10)));
        assert!(plan.port_down(egress, secs(19)));
        assert!(!plan.port_down(egress, secs(20)), "end is exclusive");
        assert!(!plan.port_down(ingress, secs(15)), "other ports unaffected");
        // The crash takes down every port of GPU 0.
        assert!(plan.port_down(PortId::NvlinkEgress(GpuId(0)), secs(35)));
        assert!(plan.port_down(PortId::PcieUp(GpuId(0)), secs(35)));
        assert!(!plan.port_down(PortId::PcieUp(GpuId(1)), secs(35)));
    }

    #[test]
    fn slowdown_takes_worst_overlap_and_congestion_hits_pcie_only() {
        let egress = PortId::NvlinkEgress(GpuId(0));
        let plan = FaultPlan::new()
            .link_degraded(egress, 3.0, secs(0), secs(100))
            .link_degraded(egress, 5.0, secs(50), secs(60))
            .dram_congestion(4.0, secs(0), secs(100));
        assert_eq!(plan.port_slowdown(egress, secs(10)), 3.0);
        assert_eq!(plan.port_slowdown(egress, secs(55)), 5.0);
        assert_eq!(plan.port_slowdown(PortId::PcieUp(GpuId(1)), secs(10)), 4.0);
        assert_eq!(
            plan.port_slowdown(PortId::PcieDown(GpuId(0)), secs(10)),
            4.0
        );
        assert_eq!(
            plan.port_slowdown(PortId::NvlinkIngress(GpuId(1)), secs(10)),
            1.0
        );
    }

    #[test]
    fn first_outage_is_strictly_inside_the_span() {
        let egress = PortId::NvlinkEgress(GpuId(0));
        let plan = FaultPlan::new()
            .link_down(egress, secs(50), secs(60))
            .link_down(egress, secs(30), secs(31));
        assert_eq!(
            plan.first_outage_in(egress, secs(0), secs(100)),
            Some(secs(30))
        );
        assert_eq!(
            plan.first_outage_in(egress, secs(40), secs(100)),
            Some(secs(50))
        );
        // An outage already active at `start` is not a *new* cut.
        assert_eq!(plan.first_outage_in(egress, secs(50), secs(100)), None);
        assert_eq!(plan.first_outage_in(egress, secs(61), secs(100)), None);
    }

    #[test]
    fn coordinator_stall_takes_worst_overlap() {
        let plan = FaultPlan::new()
            .coordinator_stall(SimDuration::from_millis(5), secs(0), secs(50))
            .coordinator_stall(SimDuration::from_millis(20), secs(10), secs(20));
        assert_eq!(plan.stall_at(secs(5)), SimDuration::from_millis(5));
        assert_eq!(plan.stall_at(secs(15)), SimDuration::from_millis(20));
        assert_eq!(plan.stall_at(secs(60)), SimDuration::ZERO);
    }

    #[test]
    fn flap_alternates_down_and_up() {
        let egress = PortId::NvlinkEgress(GpuId(0));
        let plan =
            FaultPlan::new().link_flap(egress, secs(0), secs(10), SimDuration::from_secs(2), 0.5);
        assert_eq!(plan.windows().len(), 5);
        assert!(plan.port_down(egress, SimTime::from_millis(500)));
        assert!(!plan.port_down(egress, SimTime::from_millis(1500)));
        assert!(plan.port_down(egress, SimTime::from_millis(2500)));
    }

    #[test]
    fn randomized_is_seed_deterministic() {
        let profile = RandomFaultProfile {
            link_ports: vec![
                PortId::NvlinkEgress(GpuId(0)),
                PortId::NvlinkIngress(GpuId(1)),
            ],
            crash_gpus: vec![GpuId(1)],
            control_plane: false,
            events: 12,
            min_duration: SimDuration::from_secs(1),
            max_duration: SimDuration::from_secs(30),
        };
        let horizon = secs(600);
        let a = FaultPlan::randomized(7, horizon, &profile);
        let b = FaultPlan::randomized(7, horizon, &profile);
        let c = FaultPlan::randomized(8, horizon, &profile);
        assert_eq!(a.windows(), b.windows());
        assert_ne!(a.windows(), c.windows());
        assert_eq!(a.windows().len(), 12);
        for w in a.windows() {
            assert!(w.start < w.end);
            assert!(w.end <= horizon + SimDuration::from_secs(30));
        }
    }

    #[test]
    fn randomized_control_plane_draws_crashes_and_partitions() {
        let profile = RandomFaultProfile {
            link_ports: vec![PortId::NvlinkEgress(GpuId(0))],
            crash_gpus: vec![GpuId(1)],
            control_plane: true,
            events: 64,
            min_duration: SimDuration::from_secs(1),
            max_duration: SimDuration::from_secs(30),
        };
        let plan = FaultPlan::randomized(11, secs(600), &profile);
        let crashes = plan
            .windows()
            .iter()
            .filter(|w| matches!(w.kind, FaultKind::CoordinatorCrash))
            .count();
        let partitions = plan
            .windows()
            .iter()
            .filter(|w| matches!(w.kind, FaultKind::Partition { .. }))
            .count();
        assert!(crashes > 0, "64 draws must include a coordinator crash");
        assert!(partitions > 0, "64 draws must include a partition");
        for w in plan.windows() {
            if let FaultKind::Partition { split } = w.kind {
                assert!((1..=4).contains(&split));
            }
        }
        // Same profile without control-plane faults draws neither.
        let calm = RandomFaultProfile {
            control_plane: false,
            ..profile
        };
        assert!(FaultPlan::randomized(11, secs(600), &calm)
            .windows()
            .iter()
            .all(|w| !matches!(
                w.kind,
                FaultKind::CoordinatorCrash | FaultKind::Partition { .. }
            )));
    }

    #[test]
    fn coordinator_reachability_tracks_crash_and_partition_windows() {
        let plan = FaultPlan::new()
            .coordinator_crash(secs(10), SimDuration::from_secs(5))
            .partition(1, secs(30), secs(40));
        // Crash window: everyone loses the coordinator.
        assert!(!plan.coordinator_down(secs(9)));
        assert!(plan.coordinator_down(secs(10)));
        assert!(plan.coordinator_down(secs(14)));
        assert!(!plan.coordinator_down(secs(15)), "rebuild completes");
        assert!(!plan.coordinator_reachable(GpuId(0), secs(12)));
        // Partition window: only the far side (index >= split) is cut off.
        assert_eq!(plan.partition_split(secs(35)), Some(1));
        assert_eq!(plan.partition_split(secs(45)), None);
        assert!(plan.coordinator_reachable(GpuId(0), secs(35)));
        assert!(!plan.coordinator_reachable(GpuId(1), secs(35)));
        assert!(plan.coordinator_reachable(GpuId(1), secs(40)), "healed");
    }

    #[test]
    fn emit_journals_every_window_twice() {
        use aqua_telemetry::JournalTracer;
        use std::sync::Arc;

        let plan = FaultPlan::new()
            .gpu_crash(GpuId(1), secs(300), secs(420))
            .dram_congestion(2.0, secs(100), secs(110));
        let journal = Arc::new(JournalTracer::new());
        let shared: SharedTracer = journal.clone();
        plan.emit(&shared);
        assert_eq!(journal.len(), 4);
        let names: Vec<&str> = journal.events().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "fault_injected",
                "fault_cleared",
                "fault_injected",
                "fault_cleared"
            ]
        );
    }
}
