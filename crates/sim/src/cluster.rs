//! Clusters of multi-GPU servers.
//!
//! The paper's end-to-end evaluation (§6.1) runs on "a cluster of 8
//! servers, each with 2 GPUs", hosting 16 models placed by AQUA-PLACER.
//! Inter-GPU offloading only works *within* a server (the NVLink domain);
//! across servers there is only the datacenter fabric, which AQUA does not
//! use. A [`Cluster`] is therefore just an indexed set of independent
//! [`ServerTopology`]s, each with its own transfer engine, plus addressing
//! helpers.

use crate::gpu::{GpuId, GpuSpec};
use crate::topology::ServerTopology;
use serde::{Deserialize, Serialize};

/// Cluster-wide GPU address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterGpu {
    /// Server index.
    pub server: usize,
    /// GPU index within the server.
    pub gpu: GpuId,
}

impl std::fmt::Display for ClusterGpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server{}/{}", self.server, self.gpu)
    }
}

/// A cluster of identical multi-GPU servers.
///
/// # Example
///
/// ```
/// use aqua_sim::cluster::Cluster;
/// use aqua_sim::gpu::GpuSpec;
///
/// // The paper's §6.1 cluster: 8 servers x 2 GPUs.
/// let cluster = Cluster::of_nvlink_pairs(8, GpuSpec::a100_80g());
/// assert_eq!(cluster.server_count(), 8);
/// assert_eq!(cluster.total_gpus(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    servers: Vec<ServerTopology>,
}

impl Cluster {
    /// A cluster of `n` two-GPU direct-NVLink servers (the paper's §6.1
    /// building block).
    pub fn of_nvlink_pairs(n: usize, spec: GpuSpec) -> Self {
        assert!(n > 0, "a cluster needs at least one server");
        Cluster {
            servers: (0..n)
                .map(|_| ServerTopology::nvlink_pair(spec.clone()))
                .collect(),
        }
    }

    /// A cluster of `n` NVSwitch servers with `gpus` GPUs each.
    pub fn of_nvswitch_servers(n: usize, gpus: usize, spec: GpuSpec) -> Self {
        assert!(n > 0, "a cluster needs at least one server");
        Cluster {
            servers: (0..n)
                .map(|_| ServerTopology::nvswitch(gpus, spec.clone()))
                .collect(),
        }
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// GPUs per server (identical across the cluster).
    pub fn gpus_per_server(&self) -> usize {
        self.servers[0].gpu_count()
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.servers.iter().map(ServerTopology::gpu_count).sum()
    }

    /// Shared access to one server.
    pub fn server(&self, s: usize) -> &ServerTopology {
        &self.servers[s]
    }

    /// Mutable access to one server.
    pub fn server_mut(&mut self, s: usize) -> &mut ServerTopology {
        &mut self.servers[s]
    }

    /// Iterates over servers in index order.
    pub fn servers(&self) -> impl Iterator<Item = &ServerTopology> {
        self.servers.iter()
    }

    /// Whether two GPUs share a fast inter-GPU network (the precondition
    /// for AQUA offloading between them).
    pub fn same_nvlink_domain(&self, a: ClusterGpu, b: ClusterGpu) -> bool {
        a.server == b.server && a.gpu != b.gpu
    }

    /// Enumerates every GPU address in the cluster.
    pub fn gpu_addresses(&self) -> Vec<ClusterGpu> {
        let mut out = Vec::with_capacity(self.total_gpus());
        for (s, server) in self.servers.iter().enumerate() {
            for g in 0..server.gpu_count() {
                out.push(ClusterGpu {
                    server: s,
                    gpu: GpuId(g),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let c = Cluster::of_nvlink_pairs(8, GpuSpec::a100_80g());
        assert_eq!(c.server_count(), 8);
        assert_eq!(c.gpus_per_server(), 2);
        assert_eq!(c.total_gpus(), 16);
        assert_eq!(c.gpu_addresses().len(), 16);
    }

    #[test]
    fn nvlink_domain_is_intra_server() {
        let c = Cluster::of_nvlink_pairs(2, GpuSpec::a100_80g());
        let a = ClusterGpu {
            server: 0,
            gpu: GpuId(0),
        };
        let b = ClusterGpu {
            server: 0,
            gpu: GpuId(1),
        };
        let x = ClusterGpu {
            server: 1,
            gpu: GpuId(0),
        };
        assert!(c.same_nvlink_domain(a, b));
        assert!(!c.same_nvlink_domain(a, x), "no NVLink across servers");
        assert!(!c.same_nvlink_domain(a, a), "a GPU is not its own peer");
    }

    #[test]
    fn nvswitch_cluster() {
        let c = Cluster::of_nvswitch_servers(2, 8, GpuSpec::a100_80g());
        assert_eq!(c.total_gpus(), 16);
        assert_eq!(c.server(1).gpu_count(), 8);
        assert_eq!(
            ClusterGpu {
                server: 1,
                gpu: GpuId(3)
            }
            .to_string(),
            "server1/gpu3"
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        Cluster::of_nvlink_pairs(0, GpuSpec::a100_80g());
    }
}
