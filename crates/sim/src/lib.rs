//! # aqua-sim — deterministic multi-GPU server simulator
//!
//! This crate is the hardware substrate for the AQUA reproduction. The paper
//! evaluates AQUA on servers with 2× and 8× NVIDIA A100-80G GPUs connected by
//! direct NVLinks or an NVSwitch fabric, with host DRAM reachable over PCIe.
//! We cannot require that hardware, so this crate models it:
//!
//! * [`time`] — an integer-nanosecond simulation clock ([`SimTime`],
//!   [`SimDuration`]) so every experiment is bit-for-bit deterministic.
//! * [`event`] — a deterministic discrete-event queue with stable FIFO
//!   tie-breaking.
//! * [`link`] — interconnect bandwidth models with the *size-dependent*
//!   effective bandwidth the paper measures in Figure 3a (small transfers on
//!   NVLink are PCIe-slow; peak bandwidth needs multi-megabyte buffers).
//! * [`memory`] — an HBM accounting allocator with labelled regions,
//!   reservations and *leases* (memory donated to another GPU via AQUA).
//! * [`gpu`] — GPU hardware specifications (A100-80G by default) and state.
//! * [`topology`] — server topologies: 2-GPU direct-NVLink, 8-GPU NVSwitch,
//!   and the PCIe path to host DRAM.
//! * [`transfer`] — a port-level transfer engine: each directional port is a
//!   FIFO resource, so concurrent transfers on disjoint ports overlap while
//!   transfers sharing a port serialize (this is how NVSwitch contention and
//!   the Figure 18 stress test are modelled).
//! * [`cluster`] — clusters of servers (the §6.1 testbed: 8 servers × 2
//!   GPUs); AQUA offloading is confined to each server's NVLink domain.
//!
//! # Example
//!
//! ```
//! use aqua_sim::prelude::*;
//!
//! // An 8-GPU NVSwitch server like the paper's second testbed.
//! let server = ServerTopology::nvswitch(8, GpuSpec::a100_80g());
//! let path = server.gpu_to_gpu_path(GpuId(0), GpuId(3)).unwrap();
//! // Offloading 1 GiB of KV cache as one coalesced copy:
//! let t = path.model.transfer_time(TransferPlan::coalesced(1 << 30));
//! assert!(t.as_secs_f64() < 0.01); // a few milliseconds over NVLink
//! ```

pub mod audit;
pub mod cluster;
pub mod event;
pub mod fault;
pub mod gpu;
pub mod link;
pub mod memory;
pub mod pdes;
pub mod topology;
pub mod transfer;

// The simulation clock lives in `aqua-telemetry` (the bottom crate of the
// workspace) so trace events can be stamped with `SimTime` without a
// dependency cycle; `aqua_sim::time` remains the canonical path.
pub use aqua_telemetry::time;

pub mod prelude {
    //! Convenience re-exports of the most common simulator types.
    pub use crate::audit::{AuditViolation, Auditor, SharedAuditor};
    pub use crate::cluster::{Cluster, ClusterGpu};
    pub use crate::event::EventQueue;
    pub use crate::fault::{FaultKind, FaultPlan, FaultWindow, RandomFaultProfile};
    pub use crate::gpu::{Gpu, GpuId, GpuSpec};
    pub use crate::link::{BandwidthModel, LinkKind};
    pub use crate::memory::{AllocId, HbmAllocator, MemoryError, RegionKind};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{LinkPath, PortId, ServerTopology};
    pub use crate::transfer::{TransferEngine, TransferError, TransferPlan};
}

pub use prelude::*;
