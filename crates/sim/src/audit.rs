//! aqua-audit — cross-cutting runtime invariant auditing.
//!
//! The simulator's correctness story is a set of conservation arguments:
//! bytes moved over NVLink/PCIe are never lost, leases are revoked exactly
//! once, a FIFO port never books overlapping transfers. Those invariants
//! are normally checked incidentally (proptests, the chaos bench); this
//! module makes them *continuously* checkable. Components accept a
//! [`SharedAuditor`] and report every suspicious state transition; the
//! auditor records a typed [`AuditViolation`] and journals it as a
//! [`TraceEvent::AuditViolation`].
//!
//! Two properties matter for how the hooks are written:
//!
//! * **Silent when clean.** An audited run that trips no check emits the
//!   exact same event stream as an unaudited one, so its determinism digest
//!   is unchanged and audited runs can be compared digest-for-digest
//!   against any journal on file (`tests/determinism.rs` pins this).
//! * **Violations, not rejections.** The coordinator properly *rejecting*
//!   an illegal verb (a free racing a revocation is protocol-legal and
//!   handled by the failover ladder) is the system working; the audit
//!   flags transitions that would corrupt the books — an over-free of a
//!   live lease (a double free), a second live lease granted to a producer
//!   that already has one, a transfer booked onto a port inside an active
//!   outage window, time running backwards.
//!
//! The invariant catalogue:
//!
//! | check | component | violation |
//! |---|---|---|
//! | byte conservation (Σ regions == used ≤ capacity) | `HbmAllocator` | [`AuditViolation::ByteConservation`] |
//! | lease books (used ≤ total on live leases) | coordinator | [`AuditViolation::ByteConservation`] |
//! | FIFO port booking (start ≥ prior horizon) | `TransferEngine` | [`AuditViolation::PortOverlap`] |
//! | lane accounting (busy time ≤ horizon) | `TransferEngine` | [`AuditViolation::LaneOverCapacity`] |
//! | no bookings onto dead ports | `TransferEngine` × `FaultPlan` | [`AuditViolation::OrphanedTransfer`] |
//! | no over-free of a live lease | coordinator | [`AuditViolation::DoubleFree`] |
//! | no free applied after revocation | coordinator | [`AuditViolation::FreeAfterRevoke`] |
//! | one live lease per producer | coordinator | [`AuditViolation::DoubleGrant`] |
//! | heartbeat / watchdog / event-queue monotonicity | coordinator, driver | [`AuditViolation::TimeRegression`] |
//! | no token after a crash without a restore | gateway × `FaultPlan` | [`AuditViolation::TokenWithoutRestore`] |
//! | no stale-epoch verb mutates the rebuilt book | coordinator | [`AuditViolation::StaleEpochAccepted`] |
//! | no lease honored in two epochs | coordinator | [`AuditViolation::DoubleGrantAcrossEpochs`] |

use crate::memory::HbmAllocator;
use crate::time::{SimDuration, SimTime};
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A broken runtime invariant, observed by an audit hook.
///
/// Coordinator verbs mirror their REST originals and mostly carry no
/// timestamp; violations raised from them stamp `SimTime::ZERO`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// An allocator's or lease's byte books no longer balance.
    ByteConservation {
        /// Which books: `hbm:<gpu>`, `lease:<id>`, …
        scope: String,
        /// What the books should say at most.
        expected: u64,
        /// What they actually say.
        actual: u64,
        /// Observation time.
        at: SimTime,
    },
    /// A transfer was booked on a port before its prior booking finished
    /// (the FIFO horizon ran backwards).
    PortOverlap {
        /// The port's label.
        port: String,
        /// The horizon already booked on the port.
        busy_until: SimTime,
        /// The new transfer's start, before that horizon.
        start: SimTime,
    },
    /// A port accumulated more cumulative busy time than its horizon —
    /// more work booked on the lane than wall-clock legality allows.
    LaneOverCapacity {
        /// The port's label.
        port: String,
        /// Cumulative busy time booked.
        busy: SimDuration,
        /// The port's busy horizon.
        horizon: SimTime,
    },
    /// A transfer was booked onto a port inside an active outage window —
    /// bytes handed to a link that cannot deliver them.
    OrphanedTransfer {
        /// The dead port's label.
        port: String,
        /// When the booking happened.
        at: SimTime,
    },
    /// More bytes freed from a live lease than it had in use: a double free.
    DoubleFree {
        /// `free` or `release`.
        scope: String,
        /// Lease id.
        lease: u64,
        /// Bytes actually in use.
        used: u64,
        /// Bytes the caller tried to hand back.
        requested: u64,
        /// Observation time (`ZERO` for untimestamped verbs).
        at: SimTime,
    },
    /// A free/release mutated a lease after its revocation.
    FreeAfterRevoke {
        /// `free` or `release`.
        scope: String,
        /// Lease id.
        lease: u64,
        /// Observation time (`ZERO` for untimestamped verbs).
        at: SimTime,
    },
    /// A producer ended up with two live non-reclaiming leases (grants must
    /// merge into the existing lease instead).
    DoubleGrant {
        /// Producer GPU label.
        producer: String,
        /// The newly granted lease id.
        lease: u64,
    },
    /// A gateway delivered an output token for a sequence whose KV state
    /// was destroyed by a GPU crash, without first journalling a
    /// `request_restored` event — serving from memory that no longer exists.
    TokenWithoutRestore {
        /// Gateway scope label.
        gateway: String,
        /// The crashed request that produced a token.
        request: u64,
        /// When the illegal token was delivered.
        at: SimTime,
    },
    /// A control verb carrying an epoch older than the coordinator's
    /// mutated the rebuilt lease book instead of being fenced off — the
    /// epoch fence was bypassed.
    StaleEpochAccepted {
        /// The verb that slipped past the fence (`free`, `resync`, …).
        scope: String,
        /// The epoch the caller held.
        held: u64,
        /// The epoch in force when the mutation landed.
        current: u64,
        /// Observation time (`ZERO` for untimestamped verbs).
        at: SimTime,
    },
    /// A producer's donation ended up granted in two epochs at once: a
    /// pre-crash grant survived (or was merged back) alongside the
    /// post-recovery re-registration — the split-brain double grant epoch
    /// fencing exists to make structurally impossible.
    DoubleGrantAcrossEpochs {
        /// Producer GPU label.
        producer: String,
        /// The lease granted in the stale epoch.
        lease: u64,
        /// The epoch the stale grant belongs to.
        prior_epoch: u64,
        /// The epoch in force.
        epoch: u64,
    },
    /// A timestamped sequence ran backwards (heartbeats, watchdog sweeps,
    /// the driver's event queue).
    TimeRegression {
        /// Which clock: `driver.events`, `coordinator.advance`, …
        scope: String,
        /// The later timestamp seen first.
        prev: SimTime,
        /// The earlier timestamp seen second.
        next: SimTime,
    },
}

impl AuditViolation {
    /// Stable snake_case discriminator (the `kind` field of the journal
    /// event).
    pub fn kind(&self) -> &'static str {
        match self {
            AuditViolation::ByteConservation { .. } => "byte_conservation",
            AuditViolation::PortOverlap { .. } => "port_overlap",
            AuditViolation::LaneOverCapacity { .. } => "lane_over_capacity",
            AuditViolation::OrphanedTransfer { .. } => "orphaned_transfer",
            AuditViolation::DoubleFree { .. } => "double_free",
            AuditViolation::FreeAfterRevoke { .. } => "free_after_revoke",
            AuditViolation::DoubleGrant { .. } => "double_grant",
            AuditViolation::TokenWithoutRestore { .. } => "token_without_restore",
            AuditViolation::StaleEpochAccepted { .. } => "stale_epoch_accepted",
            AuditViolation::DoubleGrantAcrossEpochs { .. } => "double_grant_across_epochs",
            AuditViolation::TimeRegression { .. } => "time_regression",
        }
    }

    /// The component whose books broke.
    pub fn scope(&self) -> String {
        match self {
            AuditViolation::ByteConservation { scope, .. } => scope.clone(),
            AuditViolation::PortOverlap { port, .. }
            | AuditViolation::LaneOverCapacity { port, .. }
            | AuditViolation::OrphanedTransfer { port, .. } => format!("port:{port}"),
            AuditViolation::DoubleFree { scope, .. }
            | AuditViolation::FreeAfterRevoke { scope, .. } => format!("coordinator.{scope}"),
            AuditViolation::DoubleGrant { .. } => "coordinator.lease".to_owned(),
            AuditViolation::TokenWithoutRestore { gateway, .. } => format!("gateway:{gateway}"),
            AuditViolation::StaleEpochAccepted { scope, .. } => format!("coordinator.{scope}"),
            AuditViolation::DoubleGrantAcrossEpochs { .. } => "coordinator.lease".to_owned(),
            AuditViolation::TimeRegression { scope, .. } => scope.clone(),
        }
    }

    /// When the violation was observed (`ZERO` for untimestamped verbs).
    pub fn at(&self) -> SimTime {
        match self {
            AuditViolation::ByteConservation { at, .. }
            | AuditViolation::OrphanedTransfer { at, .. }
            | AuditViolation::DoubleFree { at, .. }
            | AuditViolation::FreeAfterRevoke { at, .. }
            | AuditViolation::TokenWithoutRestore { at, .. }
            | AuditViolation::StaleEpochAccepted { at, .. } => *at,
            AuditViolation::PortOverlap { start, .. } => *start,
            AuditViolation::LaneOverCapacity { horizon, .. } => *horizon,
            AuditViolation::DoubleGrant { .. } | AuditViolation::DoubleGrantAcrossEpochs { .. } => {
                SimTime::ZERO
            }
            AuditViolation::TimeRegression { next, .. } => *next,
        }
    }

    fn detail(&self) -> String {
        match self {
            AuditViolation::ByteConservation {
                expected, actual, ..
            } => format!("books say {actual} bytes, legality bound is {expected}"),
            AuditViolation::PortOverlap {
                busy_until, start, ..
            } => format!(
                "booked at {}ns before the horizon {}ns cleared",
                start.as_nanos(),
                busy_until.as_nanos()
            ),
            AuditViolation::LaneOverCapacity { busy, horizon, .. } => format!(
                "{}ns busy inside a {}ns horizon",
                busy.as_nanos(),
                horizon.as_nanos()
            ),
            AuditViolation::OrphanedTransfer { at, .. } => {
                format!("transfer booked onto a dead port at {}ns", at.as_nanos())
            }
            AuditViolation::DoubleFree {
                lease,
                used,
                requested,
                ..
            } => format!("lease {lease} freed {requested} bytes with only {used} in use"),
            AuditViolation::FreeAfterRevoke { lease, .. } => {
                format!("lease {lease} mutated after revocation")
            }
            AuditViolation::DoubleGrant { producer, lease } => {
                format!("second live lease {lease} granted to {producer}")
            }
            AuditViolation::TokenWithoutRestore { request, at, .. } => format!(
                "request {request} delivered a token at {}ns after a crash with no restore event",
                at.as_nanos()
            ),
            AuditViolation::StaleEpochAccepted { held, current, .. } => {
                format!("epoch-{held} verb mutated the epoch-{current} book unfenced")
            }
            AuditViolation::DoubleGrantAcrossEpochs {
                producer,
                lease,
                prior_epoch,
                epoch,
            } => format!(
                "{producer} holds lease {lease} from epoch {prior_epoch} inside the epoch-{epoch} \
                 book"
            ),
            AuditViolation::TimeRegression { prev, next, .. } => format!(
                "clock ran backwards: {}ns after {}ns",
                next.as_nanos(),
                prev.as_nanos()
            ),
        }
    }

    /// The journal representation of this violation.
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent::AuditViolation {
            kind: self.kind().to_owned(),
            scope: self.scope(),
            detail: self.detail(),
            at: self.at(),
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {}: {}", self.kind(), self.scope(), self.detail())
    }
}

/// The shared violation collector components report into.
///
/// Cheap to clone (always handed around as a [`SharedAuditor`]) and safe to
/// share across the coordinator's threads. A component with no auditor
/// attached pays one `Option` test per hook — the hooks stay out of the
/// untraced hot path entirely.
#[derive(Debug)]
pub struct Auditor {
    tracer: Mutex<SharedTracer>,
    violations: Mutex<Vec<AuditViolation>>,
}

/// How audited components hold their auditor.
pub type SharedAuditor = Arc<Auditor>;

impl Default for Auditor {
    fn default() -> Self {
        Auditor {
            tracer: Mutex::new(null_tracer()),
            violations: Mutex::new(Vec::new()),
        }
    }
}

impl Auditor {
    /// A fresh auditor journalling violations to `tracer`.
    pub fn with_tracer(tracer: SharedTracer) -> SharedAuditor {
        let a = Auditor::default();
        *a.tracer.lock() = tracer;
        Arc::new(a)
    }

    /// A fresh auditor that only collects (no journalling).
    pub fn collecting() -> SharedAuditor {
        Arc::new(Auditor::default())
    }

    /// Records a violation and journals it as a trace event.
    pub fn record(&self, v: AuditViolation) {
        let tracer = self.tracer.lock().clone();
        tracer.incr("audit.violations", 1);
        trace!(tracer, v.to_event());
        self.violations.lock().push(v);
    }

    /// `true` while no check has tripped.
    pub fn is_clean(&self) -> bool {
        self.violations.lock().is_empty()
    }

    /// Number of violations recorded so far.
    pub fn count(&self) -> usize {
        self.violations.lock().len()
    }

    /// Snapshot of every recorded violation, in observation order.
    pub fn violations(&self) -> Vec<AuditViolation> {
        self.violations.lock().clone()
    }

    /// The first violation, if any (what a shrinker reproduces).
    pub fn first(&self) -> Option<AuditViolation> {
        self.violations.lock().first().cloned()
    }

    /// Byte-conservation sweep over an allocator: region sum must equal the
    /// used counter, and used must fit the capacity.
    pub fn check_allocator(&self, scope: &str, hbm: &HbmAllocator, at: SimTime) {
        let region_sum: u64 = hbm.iter().map(|(_, _, bytes)| bytes).sum();
        if region_sum != hbm.used_bytes() {
            self.record(AuditViolation::ByteConservation {
                scope: scope.to_owned(),
                expected: region_sum,
                actual: hbm.used_bytes(),
                at,
            });
        }
        if hbm.used_bytes() > hbm.capacity() {
            self.record(AuditViolation::ByteConservation {
                scope: scope.to_owned(),
                expected: hbm.capacity(),
                actual: hbm.used_bytes(),
                at,
            });
        }
    }

    /// Monotonicity check: `next` must not precede `prev`.
    pub fn check_monotonic(&self, scope: &str, prev: SimTime, next: SimTime) {
        if next < prev {
            self.record(AuditViolation::TimeRegression {
                scope: scope.to_owned(),
                prev,
                next,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::RegionKind;
    use aqua_telemetry::JournalTracer;

    #[test]
    fn clean_auditor_reports_clean() {
        let a = Auditor::collecting();
        assert!(a.is_clean());
        assert_eq!(a.count(), 0);
        assert!(a.first().is_none());
    }

    #[test]
    fn violations_are_recorded_in_order_and_journalled() {
        let journal = Arc::new(JournalTracer::new());
        let a = Auditor::with_tracer(journal.clone());
        a.record(AuditViolation::DoubleGrant {
            producer: "gpu1".into(),
            lease: 7,
        });
        a.record(AuditViolation::TimeRegression {
            scope: "driver.events".into(),
            prev: SimTime::from_secs(2),
            next: SimTime::from_secs(1),
        });
        assert_eq!(a.count(), 2);
        assert!(!a.is_clean());
        assert_eq!(a.first().unwrap().kind(), "double_grant");
        let lines = journal.to_jsonl();
        assert_eq!(lines.matches("audit_violation").count(), 2);
        assert!(lines.contains("double_grant"));
        assert!(lines.contains("time_regression"));
    }

    #[test]
    fn allocator_conservation_check_passes_on_consistent_books() {
        let a = Auditor::collecting();
        let mut hbm = HbmAllocator::new(1 << 30);
        let id = hbm.alloc(RegionKind::Weights, 1 << 20).unwrap();
        a.check_allocator("hbm:0", &hbm, SimTime::ZERO);
        hbm.free(id).unwrap();
        a.check_allocator("hbm:0", &hbm, SimTime::ZERO);
        assert!(a.is_clean());
    }

    #[test]
    fn monotonic_check_flags_backwards_time() {
        let a = Auditor::collecting();
        a.check_monotonic("t", SimTime::from_secs(1), SimTime::from_secs(1));
        a.check_monotonic("t", SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(a.is_clean());
        a.check_monotonic("t", SimTime::from_secs(3), SimTime::from_secs(2));
        assert_eq!(a.count(), 1);
        assert_eq!(a.first().unwrap().kind(), "time_regression");
    }

    #[test]
    fn violation_display_is_informative() {
        let v = AuditViolation::DoubleFree {
            scope: "free".into(),
            lease: 3,
            used: 10,
            requested: 20,
            at: SimTime::ZERO,
        };
        let s = v.to_string();
        assert!(s.contains("double_free"));
        assert!(s.contains("lease 3"));
    }
}
