//! Transfer plans and the port-level transfer engine.
//!
//! Two ideas from the paper live here:
//!
//! 1. **Transfer shape matters** (§3, §5, Figure 3a). Copying many small
//!    tensors (a prompt's per-layer KV slices, a LoRA adapter's per-layer
//!    weights) pays NVLink's poor small-message efficiency once per tensor.
//!    AQUA's custom gather/scatter kernels coalesce them into one large
//!    staging buffer first. [`TransferPlan`] makes the shape explicit so both
//!    strategies can be costed and compared (the `ablate_coalescing` bench).
//! 2. **Ports serialize** (Figure 18). Each directional port processes one
//!    transfer at a time, FIFO; transfers on disjoint ports overlap freely.
//!    [`TransferEngine`] tracks per-port busy horizons to schedule transfers
//!    deterministically.

use crate::audit::{AuditViolation, SharedAuditor};
use crate::fault::FaultPlan;
use crate::link::BandwidthModel;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkPath, PortId};
use aqua_telemetry::{null_tracer, trace, Lane, SharedTracer, TraceEvent};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The shape of a data movement: one big copy, or many small ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferPlan {
    /// A single contiguous copy of `bytes` (AQUA's gather-then-copy path).
    Coalesced {
        /// Total payload bytes.
        bytes: u64,
    },
    /// `chunks` separate copies of `chunk_bytes` each (the naive path).
    Scattered {
        /// Number of individual copies issued.
        chunks: u64,
        /// Bytes per copy.
        chunk_bytes: u64,
    },
}

impl TransferPlan {
    /// A single contiguous copy.
    pub fn coalesced(bytes: u64) -> Self {
        TransferPlan::Coalesced { bytes }
    }

    /// `chunks` copies of `chunk_bytes` each.
    pub fn scattered(chunks: u64, chunk_bytes: u64) -> Self {
        TransferPlan::Scattered {
            chunks,
            chunk_bytes,
        }
    }

    /// Total payload bytes moved by the plan.
    pub fn total_bytes(self) -> u64 {
        match self {
            TransferPlan::Coalesced { bytes } => bytes,
            TransferPlan::Scattered {
                chunks,
                chunk_bytes,
            } => chunks * chunk_bytes,
        }
    }
}

/// GPU-side cost of gathering scattered tensors into a contiguous staging
/// buffer (or scattering one back): one HBM read plus one HBM write of the
/// payload. This is the price AQUA pays to convert a [`TransferPlan::Scattered`]
/// into a [`TransferPlan::Coalesced`] — tiny next to the link-time it saves.
pub fn staging_time(bytes: u64, hbm_bandwidth: f64) -> SimDuration {
    SimDuration::from_secs_f64(2.0 * bytes as f64 / hbm_bandwidth)
}

/// A scheduled transfer: when it starts (after queueing) and completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledTransfer {
    /// When the transfer acquires all its ports.
    pub start: SimTime,
    /// When the last byte lands.
    pub end: SimTime,
    /// Pure wire time, excluding queueing behind earlier transfers.
    pub wire_time: SimDuration,
}

impl ScheduledTransfer {
    /// Total latency observed by the requester, including queueing.
    pub fn latency_from(&self, requested_at: SimTime) -> SimDuration {
        self.end.duration_since(requested_at)
    }
}

/// Why a fault-aware transfer could not complete.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferError {
    /// A port on the path was already down when the transfer would start.
    PathDown {
        /// The first dead port found on the path.
        port: PortId,
        /// When the transfer would have started.
        at: SimTime,
    },
    /// The transfer started but an outage cut it mid-flight.
    Aborted {
        /// The port whose outage cut the transfer.
        port: PortId,
        /// When the cut happened.
        at: SimTime,
        /// Bytes that made it across before the cut.
        partial_bytes: u64,
    },
}

impl TransferError {
    /// When the failure was observed.
    pub fn at(&self) -> SimTime {
        match self {
            TransferError::PathDown { at, .. } | TransferError::Aborted { at, .. } => *at,
        }
    }

    /// Bytes delivered before the failure (0 for a path that never started).
    pub fn partial_bytes(&self) -> u64 {
        match self {
            TransferError::PathDown { .. } => 0,
            TransferError::Aborted { partial_bytes, .. } => *partial_bytes,
        }
    }
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::PathDown { port, at } => {
                write!(f, "path down: port {port} dead at {}ns", at.as_nanos())
            }
            TransferError::Aborted {
                port,
                at,
                partial_bytes,
            } => write!(
                f,
                "transfer aborted on {port} at {}ns after {partial_bytes} bytes",
                at.as_nanos()
            ),
        }
    }
}

impl std::error::Error for TransferError {}

/// Deterministic per-port FIFO transfer scheduler.
///
/// # Example
///
/// ```
/// use aqua_sim::prelude::*;
///
/// let server = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
/// let mut engine = TransferEngine::new();
/// let path = server.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
/// let a = engine.schedule(&path, TransferPlan::coalesced(1 << 28), SimTime::ZERO);
/// let b = engine.schedule(&path, TransferPlan::coalesced(1 << 28), SimTime::ZERO);
/// // Same ports: the second transfer queues behind the first.
/// assert_eq!(b.start, a.end);
/// ```
#[derive(Debug, Clone)]
pub struct TransferEngine {
    /// Dense per-port accounting, indexed by [`port_slot`]. One slot update
    /// per port per transfer — no hashing, no separate maps.
    ports: Vec<PortStats>,
    tracer: SharedTracer,
    server: u32,
    faults: Option<Arc<FaultPlan>>,
    auditor: Option<SharedAuditor>,
}

/// Tolerance used by the oversubscription `debug_assert` in
/// [`TransferEngine::port_utilization`].
pub const UTILIZATION_EPS: f64 = 1e-9;

/// All per-port state in one slot: the scheduling horizon, cumulative
/// counters, and the lazily-rendered trace labels (so the traced path
/// allocates the lane name once per port, not once per transfer).
#[derive(Debug, Clone, Default)]
struct PortStats {
    busy_until: SimTime,
    bytes: u64,
    busy_time: SimDuration,
    lane: Option<Lane>,
    byte_counter: Option<String>,
}

impl PortStats {
    /// The interned lane label for `port`, rendered on first use.
    fn lane(&mut self, port: PortId) -> &Lane {
        self.lane
            .get_or_insert_with(|| Lane::from(port.to_string()))
    }

    /// The per-lane byte-counter name for `port`, rendered on first use.
    fn byte_counter(&mut self, port: PortId) -> &str {
        self.byte_counter
            .get_or_insert_with(|| format!("link.bytes.{port}"))
    }
}

/// Maps a port to its dense slot: four directional ports per GPU.
fn port_slot(port: PortId) -> usize {
    match port {
        PortId::NvlinkEgress(g) => g.0 * 4,
        PortId::NvlinkIngress(g) => g.0 * 4 + 1,
        PortId::PcieUp(g) => g.0 * 4 + 2,
        PortId::PcieDown(g) => g.0 * 4 + 3,
    }
}

impl Default for TransferEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl TransferEngine {
    /// Creates an idle transfer engine (tracing disabled).
    pub fn new() -> Self {
        TransferEngine {
            ports: Vec::new(),
            tracer: null_tracer(),
            server: 0,
            faults: None,
            auditor: None,
        }
    }

    /// Shared access to a port's slot, if it has ever been touched.
    fn stats(&self, port: PortId) -> Option<&PortStats> {
        self.ports.get(port_slot(port))
    }

    /// Mutable access to a port's slot, growing the dense table on first
    /// touch of a new GPU's ports.
    fn stats_mut(&mut self, port: PortId) -> &mut PortStats {
        let slot = port_slot(port);
        if slot >= self.ports.len() {
            self.ports.resize_with(slot + 1, PortStats::default);
        }
        &mut self.ports[slot]
    }

    /// Attaches a tracer; every scheduled transfer emits enqueue/start/
    /// complete events per port, tagged with `server` as the trace process.
    pub fn set_tracer(&mut self, tracer: SharedTracer, server: u32) {
        self.tracer = tracer;
        self.server = server;
    }

    /// Attaches a fault plan. Degradation windows stretch wire times on all
    /// scheduling paths; outage windows make [`TransferEngine::try_schedule`]
    /// fail with partial-byte accounting.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Detaches the fault plan (back to fault-free behaviour).
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// Attaches an invariant auditor. Every booking is then checked for
    /// FIFO-horizon legality, lane over-capacity and (with a fault plan)
    /// bookings onto ports inside an active outage. The untraced hot path
    /// pays one `Option` test when no auditor is attached.
    pub fn set_auditor(&mut self, auditor: SharedAuditor) {
        self.auditor = Some(auditor);
    }

    /// Earliest time a transfer issued at `now` could start on `path`.
    pub fn earliest_start(&self, path: &LinkPath, now: SimTime) -> SimTime {
        path.ports
            .iter()
            .filter_map(|p| self.stats(*p).map(|s| s.busy_until))
            .fold(now, SimTime::max)
    }

    /// Schedules `plan` on `path` at `now`, occupying every port on the path
    /// until completion. Returns the start/end times.
    pub fn schedule(
        &mut self,
        path: &LinkPath,
        plan: TransferPlan,
        now: SimTime,
    ) -> ScheduledTransfer {
        let start = self.earliest_start(path, now);
        let wire_time = self.degraded_wire_time(path, path.model.transfer_time(plan), start);
        self.commit(path, plan, wire_time, start, now)
    }

    /// Schedules a transfer using an explicit bandwidth model instead of the
    /// path's (e.g. pageable PCIe for framework-level copies) while still
    /// occupying the path's ports.
    pub fn schedule_with_model(
        &mut self,
        path: &LinkPath,
        model: &BandwidthModel,
        plan: TransferPlan,
        now: SimTime,
    ) -> ScheduledTransfer {
        let start = self.earliest_start(path, now);
        let wire_time = self.degraded_wire_time(path, model.transfer_time(plan), start);
        self.commit(path, plan, wire_time, start, now)
    }

    /// Fault-aware scheduling: fails instead of silently completing when an
    /// outage window (link down, GPU crash) covers the path.
    ///
    /// * Path already down at the would-be start → [`TransferError::PathDown`]
    ///   and no port state changes.
    /// * Outage opens mid-flight → the transfer is cut at the outage start:
    ///   ports are occupied (and byte counters credited) only up to the cut,
    ///   and [`TransferError::Aborted`] reports the partial bytes delivered.
    ///
    /// Without a fault plan this is exactly [`TransferEngine::schedule`].
    pub fn try_schedule(
        &mut self,
        path: &LinkPath,
        plan: TransferPlan,
        now: SimTime,
    ) -> Result<ScheduledTransfer, TransferError> {
        let Some(faults) = self.faults.clone() else {
            return Ok(self.schedule(path, plan, now));
        };
        let start = self.earliest_start(path, now);
        let traced = self.tracer.enabled();
        if let Some(port) = path.ports.iter().find(|p| faults.port_down(**p, start)) {
            let port = *port;
            if traced {
                self.tracer.incr("transfer.aborts", 1);
                let lane = self.stats_mut(port).lane(port).clone();
                trace!(
                    self.tracer,
                    TraceEvent::TransferAborted {
                        server: self.server,
                        lane,
                        bytes: plan.total_bytes(),
                        partial: 0,
                        at: start,
                    }
                );
            }
            return Err(TransferError::PathDown { port, at: start });
        }
        let wire_time = self.degraded_wire_time(path, path.model.transfer_time(plan), start);
        let end = start + wire_time;
        let cut = path
            .ports
            .iter()
            .filter_map(|p| faults.first_outage_in(*p, start, end).map(|t| (*p, t)))
            .min_by_key(|(_, t)| *t);
        let Some((cut_port, cut_at)) = cut else {
            return Ok(self.commit(path, plan, wire_time, start, now));
        };
        // Mid-flight abort: bytes stream linearly, so the partial payload is
        // proportional to the elapsed fraction of the wire time.
        let bytes = plan.total_bytes();
        let elapsed = cut_at.duration_since(start);
        let partial = if wire_time.is_zero() {
            0
        } else {
            (bytes as u128 * elapsed.as_nanos() as u128 / wire_time.as_nanos() as u128) as u64
        };
        if traced {
            self.tracer.incr("transfer.aborts", 1);
            self.tracer.incr("transfer.partial_bytes", partial);
            let tracer = self.tracer.clone();
            for &p in &path.ports {
                let stats = self.stats_mut(p);
                stats.busy_until = cut_at;
                stats.bytes += partial;
                stats.busy_time += elapsed;
                let lane = stats.lane(p).clone();
                tracer.emit(TraceEvent::TransferAborted {
                    server: self.server,
                    lane,
                    bytes,
                    partial,
                    at: cut_at,
                });
            }
        } else {
            for &p in &path.ports {
                let stats = self.stats_mut(p);
                stats.busy_until = cut_at;
                stats.bytes += partial;
                stats.busy_time += elapsed;
            }
        }
        Err(TransferError::Aborted {
            port: cut_port,
            at: cut_at,
            partial_bytes: partial,
        })
    }

    /// Stretches a nominal wire time by the worst degradation multiplier
    /// active on any of the path's ports at `start`.
    fn degraded_wire_time(
        &self,
        path: &LinkPath,
        wire_time: SimDuration,
        start: SimTime,
    ) -> SimDuration {
        let Some(faults) = &self.faults else {
            return wire_time;
        };
        let slow = path
            .ports
            .iter()
            .fold(1.0f64, |acc, p| acc.max(faults.port_slowdown(*p, start)));
        if slow > 1.0 {
            SimDuration::from_secs_f64(wire_time.as_secs_f64() * slow)
        } else {
            wire_time
        }
    }

    /// Books the transfer on every port of the path. `start` is the already
    /// computed [`TransferEngine::earliest_start`] for this path, so commit
    /// never re-scans port horizons.
    ///
    /// This is the hottest line in the simulator: one dense-slot update per
    /// port per transfer, and — untraced — zero allocations and zero virtual
    /// tracer calls. Traced runs reuse the per-port interned [`Lane`] and
    /// byte-counter label instead of re-rendering them per transfer.
    fn commit(
        &mut self,
        path: &LinkPath,
        plan: TransferPlan,
        wire_time: SimDuration,
        start: SimTime,
        now: SimTime,
    ) -> ScheduledTransfer {
        let end = start + wire_time;
        let bytes = plan.total_bytes();
        let chunks = match plan {
            TransferPlan::Coalesced { .. } => 1,
            TransferPlan::Scattered { chunks, .. } => chunks,
        };
        if let Some(aud) = &self.auditor {
            for &p in &path.ports {
                let prior = self
                    .ports
                    .get(port_slot(p))
                    .map_or(SimTime::ZERO, |s| s.busy_until);
                if start < prior {
                    aud.record(AuditViolation::PortOverlap {
                        port: p.to_string(),
                        busy_until: prior,
                        start,
                    });
                }
                // Orphan check is fabric-only: PCIe rescue paths (detours,
                // stranded-byte rematerialisation) are host-mediated and
                // modeled as always available, so a crash window downing a
                // GPU's PCIe ports must not flag them. A *fabric* booking
                // inside an outage means someone bypassed `try_schedule`.
                let fabric = matches!(p, PortId::NvlinkEgress(_) | PortId::NvlinkIngress(_));
                if fabric && self.faults.as_ref().is_some_and(|f| f.port_down(p, start)) {
                    aud.record(AuditViolation::OrphanedTransfer {
                        port: p.to_string(),
                        at: start,
                    });
                }
            }
        }
        if self.tracer.enabled() {
            self.tracer.incr("transfer.count", 1);
            self.tracer.incr("transfer.bytes", bytes);
            let tracer = self.tracer.clone();
            for &p in &path.ports {
                let stats = self.stats_mut(p);
                stats.busy_until = end;
                stats.bytes += bytes;
                stats.busy_time += wire_time;
                tracer.incr(stats.byte_counter(p), bytes);
                let lane = stats.lane(p).clone();
                tracer.emit(TraceEvent::TransferEnqueued {
                    server: self.server,
                    lane: lane.clone(),
                    bytes,
                    chunks,
                    at: now,
                });
                tracer.emit(TraceEvent::TransferStarted {
                    server: self.server,
                    lane: lane.clone(),
                    bytes,
                    at: start,
                });
                tracer.emit(TraceEvent::TransferCompleted {
                    server: self.server,
                    lane,
                    bytes,
                    chunks,
                    start,
                    end,
                });
            }
        } else {
            for &p in &path.ports {
                let stats = self.stats_mut(p);
                stats.busy_until = end;
                stats.bytes += bytes;
                stats.busy_time += wire_time;
            }
        }
        if let Some(aud) = &self.auditor {
            for &p in &path.ports {
                let s = &self.ports[port_slot(p)];
                if s.busy_time.as_nanos() > s.busy_until.as_nanos() {
                    aud.record(AuditViolation::LaneOverCapacity {
                        port: p.to_string(),
                        busy: s.busy_time,
                        horizon: s.busy_until,
                    });
                }
            }
        }
        ScheduledTransfer {
            start,
            end,
            wire_time,
        }
    }

    /// Busy horizon of a single port (for tests and introspection).
    pub fn port_busy_until(&self, port: crate::topology::PortId) -> SimTime {
        self.stats(port).map_or(SimTime::ZERO, |s| s.busy_until)
    }

    /// Cumulative payload bytes that crossed a port.
    pub fn port_bytes(&self, port: crate::topology::PortId) -> u64 {
        self.stats(port).map_or(0, |s| s.bytes)
    }

    /// Cumulative time a port spent transferring.
    pub fn port_busy_time(&self, port: crate::topology::PortId) -> SimDuration {
        self.stats(port).map_or(SimDuration::ZERO, |s| s.busy_time)
    }

    /// Port utilisation over a window: busy time divided by `horizon`
    /// (0 for a zero-length window).
    ///
    /// The ratio is **not** clamped: a value above 1.0 means more busy time
    /// was booked than the window holds — i.e. the queried window is shorter
    /// than the port's backlog, or (a bug) overlapping transfers were booked
    /// on one port. When `horizon` covers the port's full busy horizon the
    /// FIFO invariant makes over-unity impossible, so that case is guarded by
    /// a `debug_assert` instead of silently clamping it away.
    pub fn port_utilization(&self, port: crate::topology::PortId, horizon: SimTime) -> f64 {
        let h = horizon.as_secs_f64();
        if h <= 0.0 {
            return 0.0;
        }
        let ratio = self.port_busy_time(port).as_secs_f64() / h;
        if horizon >= self.port_busy_until(port) {
            debug_assert!(
                ratio <= 1.0 + UTILIZATION_EPS,
                "port {port} oversubscribed: {ratio} busy over a horizon past its backlog"
            );
        }
        ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{GpuId, GpuSpec};
    use crate::link::bytes::mib;
    use crate::topology::ServerTopology;

    fn pair() -> ServerTopology {
        ServerTopology::nvlink_pair(GpuSpec::a100_80g())
    }

    #[test]
    fn plan_total_bytes() {
        assert_eq!(TransferPlan::coalesced(100).total_bytes(), 100);
        assert_eq!(TransferPlan::scattered(10, 7).total_bytes(), 70);
    }

    #[test]
    fn same_path_serializes() {
        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        let t1 = eng.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        let t2 = eng.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        assert_eq!(t1.start, SimTime::ZERO);
        assert_eq!(t2.start, t1.end);
        assert_eq!(t1.wire_time, t2.wire_time);
    }

    #[test]
    fn disjoint_ports_overlap() {
        let s = ServerTopology::nvswitch(4, GpuSpec::a100_80g());
        let p01 = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let p23 = s.gpu_to_gpu_path(GpuId(2), GpuId(3)).unwrap();
        let mut eng = TransferEngine::new();
        let t1 = eng.schedule(&p01, TransferPlan::coalesced(mib(256)), SimTime::ZERO);
        let t2 = eng.schedule(&p23, TransferPlan::coalesced(mib(256)), SimTime::ZERO);
        assert_eq!(t1.start, SimTime::ZERO);
        assert_eq!(t2.start, SimTime::ZERO, "disjoint ports should not queue");
    }

    #[test]
    fn shared_ingress_port_contends() {
        let s = ServerTopology::nvswitch(4, GpuSpec::a100_80g());
        let p01 = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let p21 = s.gpu_to_gpu_path(GpuId(2), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        let t1 = eng.schedule(&p01, TransferPlan::coalesced(mib(256)), SimTime::ZERO);
        let t2 = eng.schedule(&p21, TransferPlan::coalesced(mib(256)), SimTime::ZERO);
        assert_eq!(t2.start, t1.end, "both target gpu1's ingress port");
    }

    #[test]
    fn pcie_duplex_directions_are_independent() {
        let s = pair();
        let up = s.gpu_to_host_path(GpuId(0));
        let down = s.host_to_gpu_path(GpuId(0));
        let mut eng = TransferEngine::new();
        let t1 = eng.schedule(&up, TransferPlan::coalesced(mib(512)), SimTime::ZERO);
        let t2 = eng.schedule(&down, TransferPlan::coalesced(mib(512)), SimTime::ZERO);
        assert_eq!(t1.start, SimTime::ZERO);
        assert_eq!(t2.start, SimTime::ZERO);
    }

    #[test]
    fn latency_includes_queueing() {
        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        let _ = eng.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        let t2 = eng.schedule(&path, TransferPlan::coalesced(mib(1)), SimTime::ZERO);
        assert!(t2.latency_from(SimTime::ZERO).as_nanos() > t2.wire_time.as_nanos());
    }

    #[test]
    fn telemetry_counts_bytes_and_busy_time() {
        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        let t1 = eng.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        let t2 = eng.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        let egress = crate::topology::PortId::NvlinkEgress(GpuId(0));
        assert_eq!(eng.port_bytes(egress), mib(128));
        assert_eq!(eng.port_busy_time(egress), t1.wire_time + t2.wire_time);
        // Back-to-back transfers: ~100% utilized until t2.end.
        let u = eng.port_utilization(egress, t2.end);
        assert!(u > 0.99, "utilization {u}");
        assert_eq!(eng.port_utilization(egress, SimTime::ZERO), 0.0);
        let idle = crate::topology::PortId::PcieUp(GpuId(0));
        assert_eq!(eng.port_bytes(idle), 0);
    }

    #[test]
    fn short_horizon_exposes_oversubscription_instead_of_clamping() {
        // Two back-to-back transfers book 2x the wire time on the egress
        // port. Querying utilisation over a window that ends at the FIRST
        // transfer's completion must report ~2.0, not silently clamp to 1.0:
        // the old clamp hid exactly this kind of oversubscription.
        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        let t1 = eng.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        let t2 = eng.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        let egress = crate::topology::PortId::NvlinkEgress(GpuId(0));
        let u = eng.port_utilization(egress, t1.end);
        assert!(
            u > 1.5,
            "oversubscribed window must read over-unity, got {u}"
        );
        // Over the full backlog the FIFO invariant holds and the ratio is
        // back at (or below) 1.0 — the debug_assert path.
        let full = eng.port_utilization(egress, t2.end);
        assert!(full <= 1.0 + UTILIZATION_EPS, "{full}");
    }

    #[test]
    fn traced_schedules_journal_per_port_lifecycle() {
        use aqua_telemetry::JournalTracer;
        use std::sync::Arc;

        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let journal = Arc::new(JournalTracer::new());
        let mut eng = TransferEngine::new();
        eng.set_tracer(journal.clone(), 0);
        let t = eng.schedule(&path, TransferPlan::scattered(4, mib(16)), SimTime::ZERO);

        // enqueue + start + complete for each of the two ports on the path.
        assert_eq!(journal.len(), 3 * path.ports.len());
        let events = journal.events();
        let completed = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::TransferCompleted {
                    lane,
                    bytes,
                    chunks,
                    start,
                    end,
                    ..
                } => Some((lane.clone(), *bytes, *chunks, *start, *end)),
                _ => None,
            })
            .expect("a completion event");
        assert_eq!(completed.0, "nvlink-egress:gpu0");
        assert_eq!(completed.1, mib(64));
        assert_eq!(completed.2, 4);
        assert_eq!((completed.3, completed.4), (t.start, t.end));
        assert_eq!(journal.registry().counter("transfer.bytes"), mib(64));
        assert_eq!(
            journal.registry().counter("link.bytes.nvlink-egress:gpu0"),
            mib(64)
        );
    }

    #[test]
    fn staging_is_cheap_relative_to_pcie() {
        let spec = GpuSpec::a100_80g();
        let bytes = mib(320);
        let gather = staging_time(bytes, spec.hbm_bandwidth);
        let pcie = spec.pcie.copy_time(bytes);
        assert!(gather.as_secs_f64() * 10.0 < pcie.as_secs_f64());
    }

    proptest::proptest! {
        /// Random transfer sequences: time only moves forward, ports are
        /// exclusive (no two transfers on one port overlap), and the port
        /// horizon equals the latest completion crossing it.
        #[test]
        fn port_exclusivity_invariant(
            ops in proptest::collection::vec((0usize..4, 0usize..4, 1u64..(64 << 20), 0u64..1_000_000), 1..60)
        ) {
            let s = ServerTopology::nvswitch(4, GpuSpec::a100_80g());
            let mut eng = TransferEngine::new();
            let mut per_port: std::collections::HashMap<crate::topology::PortId, Vec<(SimTime, SimTime)>> =
                std::collections::HashMap::new();
            for (a, b, bytes, at) in ops {
                if a == b {
                    continue;
                }
                let path = s.gpu_to_gpu_path(GpuId(a), GpuId(b)).unwrap();
                let now = SimTime::from_nanos(at);
                let t = eng.schedule(&path, TransferPlan::coalesced(bytes), now);
                proptest::prop_assert!(t.start >= now);
                proptest::prop_assert!(t.end > t.start);
                for port in &path.ports {
                    let spans = per_port.entry(*port).or_default();
                    for (s0, e0) in spans.iter() {
                        // Non-overlap: the new span starts at or after every
                        // prior span's end, or ends before it starts.
                        proptest::prop_assert!(t.start >= *e0 || t.end <= *s0);
                    }
                    spans.push((t.start, t.end));
                    let horizon = spans.iter().map(|(_, e)| *e).max().unwrap();
                    proptest::prop_assert_eq!(eng.port_busy_until(*port), horizon);
                }
            }
        }
    }

    #[test]
    fn try_schedule_without_a_plan_matches_schedule() {
        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut a = TransferEngine::new();
        let mut b = TransferEngine::new();
        let plain = a.schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO);
        let faulty = b
            .try_schedule(&path, TransferPlan::coalesced(mib(64)), SimTime::ZERO)
            .expect("no plan, no faults");
        assert_eq!(plain, faulty);
    }

    #[test]
    fn outage_at_start_fails_without_occupying_ports() {
        use crate::fault::FaultPlan;
        use std::sync::Arc;

        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let mut eng = TransferEngine::new();
        eng.set_fault_plan(Arc::new(FaultPlan::new().link_down(
            crate::topology::PortId::NvlinkEgress(GpuId(0)),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        )));
        let err = eng
            .try_schedule(
                &path,
                TransferPlan::coalesced(mib(64)),
                SimTime::from_secs(15),
            )
            .unwrap_err();
        assert!(matches!(err, TransferError::PathDown { .. }));
        assert_eq!(err.partial_bytes(), 0);
        assert_eq!(
            eng.port_bytes(crate::topology::PortId::NvlinkEgress(GpuId(0))),
            0
        );
        // After the window the same transfer goes through.
        assert!(eng
            .try_schedule(
                &path,
                TransferPlan::coalesced(mib(64)),
                SimTime::from_secs(20)
            )
            .is_ok());
    }

    #[test]
    fn mid_flight_outage_cuts_with_partial_bytes() {
        use crate::fault::FaultPlan;
        use aqua_telemetry::JournalTracer;
        use std::sync::Arc;

        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let egress = crate::topology::PortId::NvlinkEgress(GpuId(0));
        // Find the healthy wire time first, then cut halfway through it.
        let probe =
            TransferEngine::new().schedule(&path, TransferPlan::coalesced(mib(256)), SimTime::ZERO);
        let halfway = SimTime::from_nanos(probe.wire_time.as_nanos() / 2);

        let journal = Arc::new(JournalTracer::new());
        let mut eng = TransferEngine::new();
        eng.set_tracer(journal.clone(), 0);
        eng.set_fault_plan(Arc::new(FaultPlan::new().gpu_crash(
            GpuId(1),
            halfway,
            SimTime::from_secs(100),
        )));
        let err = eng
            .try_schedule(&path, TransferPlan::coalesced(mib(256)), SimTime::ZERO)
            .unwrap_err();
        let TransferError::Aborted {
            at, partial_bytes, ..
        } = err
        else {
            panic!("expected mid-flight abort, got {err:?}");
        };
        assert_eq!(at, halfway);
        // ~half the payload crossed before the cut.
        let half = mib(256) / 2;
        assert!(partial_bytes.abs_diff(half) < mib(1), "{partial_bytes}");
        assert_eq!(eng.port_bytes(egress), partial_bytes);
        assert_eq!(eng.port_busy_until(egress), halfway);
        assert_eq!(journal.registry().counter("transfer.aborts"), 1);
        assert!(journal
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::TransferAborted { .. })));
    }

    #[test]
    fn degradation_stretches_wire_time() {
        use crate::fault::FaultPlan;
        use std::sync::Arc;

        let s = pair();
        let path = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let healthy = TransferEngine::new()
            .schedule(&path, TransferPlan::coalesced(mib(256)), SimTime::ZERO)
            .wire_time;
        let mut eng = TransferEngine::new();
        eng.set_fault_plan(Arc::new(FaultPlan::new().link_degraded(
            crate::topology::PortId::NvlinkEgress(GpuId(0)),
            3.0,
            SimTime::ZERO,
            SimTime::from_secs(100),
        )));
        let slow = eng
            .schedule(&path, TransferPlan::coalesced(mib(256)), SimTime::ZERO)
            .wire_time;
        let ratio = slow.as_secs_f64() / healthy.as_secs_f64();
        assert!((ratio - 3.0).abs() < 1e-6, "ratio {ratio}");
        // Outside the window behaviour is nominal again.
        eng.clear_fault_plan();
        let after = eng
            .schedule(
                &path,
                TransferPlan::coalesced(mib(256)),
                SimTime::from_secs(200),
            )
            .wire_time;
        assert_eq!(after, healthy);
    }

    #[test]
    fn schedule_with_model_uses_override() {
        let s = pair();
        let down = s.host_to_gpu_path(GpuId(0));
        let mut eng = TransferEngine::new();
        let pageable = crate::link::BandwidthModel::pcie_gen4_pageable();
        let fast = eng.schedule(&down, TransferPlan::coalesced(mib(320)), SimTime::ZERO);
        let mut eng2 = TransferEngine::new();
        let slow = eng2.schedule_with_model(
            &down,
            &pageable,
            TransferPlan::coalesced(mib(320)),
            SimTime::ZERO,
        );
        assert!(slow.wire_time > fast.wire_time);
    }
}
