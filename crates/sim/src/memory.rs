//! HBM accounting allocator.
//!
//! The simulator does not need virtual addresses — what every experiment in
//! the paper observes is *capacity accounting*: how many bytes of a GPU's HBM
//! are consumed by model weights, KV-cache reservations, LoRA adapters,
//! activation workspace, and (with AQUA) memory *leased out* to a consumer
//! GPU. [`HbmAllocator`] tracks labelled regions with exact byte accounting
//! and enforces the invariant `used + free == capacity` at all times.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// What a region of HBM is used for. Labels drive the free-memory timelines
/// in Figures 2 and 10 and make allocator state legible in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Model weights, resident for the lifetime of the hosted model.
    Weights,
    /// Reserved KV-cache pool (vLLM-style block pool).
    KvCache,
    /// Activation / scratch workspace for an inference iteration.
    Workspace,
    /// A cached LoRA adapter.
    LoraAdapter,
    /// Memory leased to another GPU through AQUA (this GPU is a producer).
    AquaLease,
    /// An offloaded AQUA tensor stored on this GPU (this GPU hosts a
    /// consumer's context).
    AquaTensor,
    /// Anything else (tests, padding, experiments).
    Other,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionKind::Weights => "weights",
            RegionKind::KvCache => "kv-cache",
            RegionKind::Workspace => "workspace",
            RegionKind::LoraAdapter => "lora-adapter",
            RegionKind::AquaLease => "aqua-lease",
            RegionKind::AquaTensor => "aqua-tensor",
            RegionKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Handle to a live allocation inside one [`HbmAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AllocId(u64);

/// Errors returned by [`HbmAllocator`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryError {
    /// The requested allocation exceeds the currently free bytes.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes free at the time of the request.
        free: u64,
    },
    /// The allocation id is unknown (double free or foreign id).
    UnknownAllocation(AllocId),
    /// A resize would shrink an allocation below zero bytes.
    InvalidResize {
        /// The allocation's current size.
        current: u64,
        /// The requested size delta.
        shrink_by: u64,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfMemory { requested, free } => {
                write!(f, "out of HBM: requested {requested} bytes, {free} free")
            }
            MemoryError::UnknownAllocation(id) => write!(f, "unknown allocation {id:?}"),
            MemoryError::InvalidResize { current, shrink_by } => {
                write!(f, "cannot shrink {current}-byte allocation by {shrink_by}")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Region {
    kind: RegionKind,
    bytes: u64,
}

/// Byte-accurate accounting allocator for one GPU's HBM.
///
/// # Example
///
/// ```
/// use aqua_sim::memory::{HbmAllocator, RegionKind};
/// use aqua_sim::link::bytes::gib;
///
/// let mut hbm = HbmAllocator::new(gib(80));
/// let weights = hbm.alloc(RegionKind::Weights, gib(26))?;
/// assert_eq!(hbm.free_bytes(), gib(54));
/// hbm.free(weights)?;
/// assert_eq!(hbm.free_bytes(), gib(80));
/// # Ok::<(), aqua_sim::memory::MemoryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HbmAllocator {
    capacity: u64,
    used: u64,
    next_id: u64,
    regions: BTreeMap<AllocId, Region>,
}

impl HbmAllocator {
    /// Creates an allocator managing `capacity` bytes of HBM.
    pub fn new(capacity: u64) -> Self {
        HbmAllocator {
            capacity,
            used: 0,
            next_id: 0,
            regions: BTreeMap::new(),
        }
    }

    /// Total HBM capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated across all regions.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Allocates `bytes` for `kind`.
    ///
    /// Zero-byte allocations are permitted (they model empty reservations and
    /// keep callers free of special cases).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfMemory`] if fewer than `bytes` are free.
    pub fn alloc(&mut self, kind: RegionKind, bytes: u64) -> Result<AllocId, MemoryError> {
        if bytes > self.free_bytes() {
            return Err(MemoryError::OutOfMemory {
                requested: bytes,
                free: self.free_bytes(),
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.used += bytes;
        self.regions.insert(id, Region { kind, bytes });
        Ok(id)
    }

    /// Releases an allocation and returns the freed byte count.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownAllocation`] on double free.
    pub fn free(&mut self, id: AllocId) -> Result<u64, MemoryError> {
        let region = self
            .regions
            .remove(&id)
            .ok_or(MemoryError::UnknownAllocation(id))?;
        self.used -= region.bytes;
        Ok(region.bytes)
    }

    /// Like [`HbmAllocator::alloc`], additionally journalling a
    /// [`MemAllocated`](aqua_telemetry::TraceEvent::MemAllocated) event
    /// through `tracer` on success.
    ///
    /// The allocator itself cannot hold a tracer (it is `Clone + PartialEq +
    /// Serialize`, i.e. plain data), so instrumented callers pass one in.
    ///
    /// # Errors
    ///
    /// Same as [`HbmAllocator::alloc`]; nothing is journalled on failure.
    pub fn alloc_traced(
        &mut self,
        kind: RegionKind,
        bytes: u64,
        gpu: &str,
        tracer: &dyn aqua_telemetry::Tracer,
        now: crate::time::SimTime,
    ) -> Result<AllocId, MemoryError> {
        let id = self.alloc(kind, bytes)?;
        aqua_telemetry::trace!(
            tracer,
            aqua_telemetry::TraceEvent::MemAllocated {
                gpu: gpu.to_owned(),
                kind: kind.to_string(),
                bytes,
                at: now,
            }
        );
        Ok(id)
    }

    /// Like [`HbmAllocator::free`], additionally journalling a
    /// [`MemFreed`](aqua_telemetry::TraceEvent::MemFreed) event through
    /// `tracer` on success.
    ///
    /// # Errors
    ///
    /// Same as [`HbmAllocator::free`]; nothing is journalled on failure.
    pub fn free_traced(
        &mut self,
        id: AllocId,
        gpu: &str,
        tracer: &dyn aqua_telemetry::Tracer,
        now: crate::time::SimTime,
    ) -> Result<u64, MemoryError> {
        let kind = self.kind_of(id);
        let bytes = self.free(id)?;
        aqua_telemetry::trace!(
            tracer,
            aqua_telemetry::TraceEvent::MemFreed {
                gpu: gpu.to_owned(),
                kind: kind.map(|k| k.to_string()).unwrap_or_default(),
                bytes,
                at: now,
            }
        );
        Ok(bytes)
    }

    /// Grows an existing allocation by `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownAllocation`] for a bad id and
    /// [`MemoryError::OutOfMemory`] if the growth does not fit.
    pub fn grow(&mut self, id: AllocId, bytes: u64) -> Result<(), MemoryError> {
        if !self.regions.contains_key(&id) {
            return Err(MemoryError::UnknownAllocation(id));
        }
        if bytes > self.free_bytes() {
            return Err(MemoryError::OutOfMemory {
                requested: bytes,
                free: self.free_bytes(),
            });
        }
        self.used += bytes;
        self.regions.get_mut(&id).expect("checked above").bytes += bytes;
        Ok(())
    }

    /// Shrinks an existing allocation by `bytes`, returning memory to the
    /// free pool. Used when a producer reclaims part of a lease.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownAllocation`] for a bad id and
    /// [`MemoryError::InvalidResize`] if the region is smaller than `bytes`.
    pub fn shrink(&mut self, id: AllocId, bytes: u64) -> Result<(), MemoryError> {
        let region = self
            .regions
            .get_mut(&id)
            .ok_or(MemoryError::UnknownAllocation(id))?;
        if region.bytes < bytes {
            return Err(MemoryError::InvalidResize {
                current: region.bytes,
                shrink_by: bytes,
            });
        }
        region.bytes -= bytes;
        self.used -= bytes;
        Ok(())
    }

    /// Size in bytes of a live allocation.
    pub fn size_of(&self, id: AllocId) -> Option<u64> {
        self.regions.get(&id).map(|r| r.bytes)
    }

    /// Kind of a live allocation.
    pub fn kind_of(&self, id: AllocId) -> Option<RegionKind> {
        self.regions.get(&id).map(|r| r.kind)
    }

    /// Total bytes allocated to regions of `kind`.
    pub fn bytes_of_kind(&self, kind: RegionKind) -> u64 {
        self.regions
            .values()
            .filter(|r| r.kind == kind)
            .map(|r| r.bytes)
            .sum()
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over `(id, kind, bytes)` of live allocations in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AllocId, RegionKind, u64)> + '_ {
        self.regions.iter().map(|(id, r)| (*id, r.kind, r.bytes))
    }

    /// Debug invariant: the sum of region sizes equals `used_bytes()`.
    pub fn check_invariants(&self) -> bool {
        let sum: u64 = self.regions.values().map(|r| r.bytes).sum();
        sum == self.used && self.used <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::bytes::{gib, mib};
    use proptest::prelude::*;

    #[test]
    fn alloc_free_round_trip() {
        let mut hbm = HbmAllocator::new(gib(80));
        let a = hbm.alloc(RegionKind::Weights, gib(26)).unwrap();
        let b = hbm.alloc(RegionKind::KvCache, gib(40)).unwrap();
        assert_eq!(hbm.free_bytes(), gib(14));
        assert_eq!(hbm.bytes_of_kind(RegionKind::Weights), gib(26));
        assert_eq!(hbm.free(a).unwrap(), gib(26));
        assert_eq!(hbm.free(b).unwrap(), gib(40));
        assert_eq!(hbm.free_bytes(), gib(80));
        assert!(hbm.check_invariants());
    }

    #[test]
    fn traced_alloc_and_free_journal_events() {
        use crate::time::SimTime;
        use aqua_telemetry::{JournalTracer, TraceEvent};

        let journal = JournalTracer::new();
        let mut hbm = HbmAllocator::new(gib(80));
        let id = hbm
            .alloc_traced(
                RegionKind::KvCache,
                gib(2),
                "gpu0",
                &journal,
                SimTime::from_secs(1),
            )
            .unwrap();
        hbm.free_traced(id, "gpu0", &journal, SimTime::from_secs(2))
            .unwrap();
        let events = journal.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            TraceEvent::MemAllocated { gpu, bytes, .. } if gpu == "gpu0" && *bytes == gib(2)
        ));
        assert!(matches!(&events[1], TraceEvent::MemFreed { bytes, .. } if *bytes == gib(2)));
        // Failures journal nothing.
        let before = journal.len();
        assert!(hbm
            .alloc_traced(RegionKind::Other, gib(100), "gpu0", &journal, SimTime::ZERO)
            .is_err());
        assert_eq!(journal.len(), before);
    }

    #[test]
    fn oom_reports_requested_and_free() {
        let mut hbm = HbmAllocator::new(mib(10));
        let err = hbm.alloc(RegionKind::Other, mib(11)).unwrap_err();
        assert_eq!(
            err,
            MemoryError::OutOfMemory {
                requested: mib(11),
                free: mib(10)
            }
        );
    }

    #[test]
    fn double_free_is_rejected() {
        let mut hbm = HbmAllocator::new(mib(1));
        let id = hbm.alloc(RegionKind::Other, 100).unwrap();
        hbm.free(id).unwrap();
        assert_eq!(
            hbm.free(id).unwrap_err(),
            MemoryError::UnknownAllocation(id)
        );
    }

    #[test]
    fn grow_and_shrink() {
        let mut hbm = HbmAllocator::new(mib(100));
        let id = hbm.alloc(RegionKind::AquaLease, mib(10)).unwrap();
        hbm.grow(id, mib(20)).unwrap();
        assert_eq!(hbm.size_of(id), Some(mib(30)));
        hbm.shrink(id, mib(25)).unwrap();
        assert_eq!(hbm.size_of(id), Some(mib(5)));
        let err = hbm.shrink(id, mib(6)).unwrap_err();
        assert!(matches!(err, MemoryError::InvalidResize { .. }));
        assert!(hbm.check_invariants());
    }

    #[test]
    fn zero_byte_allocations_are_fine() {
        let mut hbm = HbmAllocator::new(0);
        let id = hbm.alloc(RegionKind::Other, 0).unwrap();
        assert_eq!(hbm.size_of(id), Some(0));
        assert_eq!(hbm.kind_of(id), Some(RegionKind::Other));
        hbm.free(id).unwrap();
    }

    #[test]
    fn iter_and_counts() {
        let mut hbm = HbmAllocator::new(gib(1));
        hbm.alloc(RegionKind::Weights, mib(1)).unwrap();
        hbm.alloc(RegionKind::KvCache, mib(2)).unwrap();
        assert_eq!(hbm.allocation_count(), 2);
        let total: u64 = hbm.iter().map(|(_, _, b)| b).sum();
        assert_eq!(total, mib(3));
    }

    proptest! {
        /// Any sequence of allocs/frees/grows/shrinks preserves the accounting
        /// invariant and never lets usage exceed capacity.
        #[test]
        fn accounting_invariant_holds(ops in proptest::collection::vec((0u8..4, 0u64..mib(64)), 1..200)) {
            let mut hbm = HbmAllocator::new(gib(2));
            let mut live: Vec<AllocId> = Vec::new();
            for (op, sz) in ops {
                match op {
                    0 => {
                        if let Ok(id) = hbm.alloc(RegionKind::Other, sz) {
                            live.push(id);
                        }
                    }
                    1 => {
                        if let Some(id) = live.pop() {
                            hbm.free(id).unwrap();
                        }
                    }
                    2 => {
                        if let Some(id) = live.last() {
                            let _ = hbm.grow(*id, sz);
                        }
                    }
                    _ => {
                        if let Some(id) = live.last() {
                            let _ = hbm.shrink(*id, sz);
                        }
                    }
                }
                prop_assert!(hbm.check_invariants());
                prop_assert!(hbm.used_bytes() <= hbm.capacity());
                prop_assert_eq!(hbm.used_bytes() + hbm.free_bytes(), hbm.capacity());
            }
        }

        /// A freed id never frees twice, no matter what happened in between:
        /// the second free must report `UnknownAllocation` and must not
        /// disturb the books.
        #[test]
        fn double_free_always_errors(ops in proptest::collection::vec((0u8..2, 0u64..mib(64)), 1..100)) {
            let mut hbm = HbmAllocator::new(gib(2));
            let mut live: Vec<AllocId> = Vec::new();
            let mut dead: Vec<AllocId> = Vec::new();
            for (op, sz) in ops {
                match op {
                    0 => {
                        if let Ok(id) = hbm.alloc(RegionKind::AquaTensor, sz) {
                            live.push(id);
                        }
                    }
                    _ => {
                        if let Some(id) = live.pop() {
                            hbm.free(id).unwrap();
                            dead.push(id);
                        }
                    }
                }
                for id in &dead {
                    let used = hbm.used_bytes();
                    prop_assert_eq!(
                        hbm.free(*id).unwrap_err(),
                        MemoryError::UnknownAllocation(*id)
                    );
                    prop_assert_eq!(hbm.used_bytes(), used);
                }
            }
        }

        /// Every byte allocated is returned exactly once: the sum of freed
        /// byte counts equals the sum of successful allocation sizes, and the
        /// allocator ends empty.
        #[test]
        fn bytes_are_conserved(sizes in proptest::collection::vec(0u64..mib(64), 1..100)) {
            let mut hbm = HbmAllocator::new(gib(80));
            let mut allocated = 0u64;
            let mut ids = Vec::new();
            for sz in sizes {
                let id = hbm.alloc(RegionKind::AquaLease, sz).unwrap();
                allocated += sz;
                ids.push(id);
            }
            prop_assert_eq!(hbm.used_bytes(), allocated);
            let mut freed = 0u64;
            for id in ids {
                freed += hbm.free(id).unwrap();
            }
            prop_assert_eq!(freed, allocated);
            prop_assert_eq!(hbm.used_bytes(), 0);
            prop_assert_eq!(hbm.free_bytes(), hbm.capacity());
            prop_assert_eq!(hbm.allocation_count(), 0);
        }
    }
}
