//! Conservative parallel discrete-event simulation (PDES) primitives.
//!
//! A scenario is sharded into per-domain event queues (one per server, or
//! per NVSwitch domain) that advance independently on lane threads.
//! Cross-shard effects — coordinator RPCs, lease heartbeats, cross-server
//! transfers — travel as [`Msg`]s through a [`Mailbox`] owned by the
//! executor. Correctness rests on the classic null-message argument:
//!
//! * Every cross-shard delivery pays at least the **lookahead** `L`, the
//!   minimum cross-domain link latency (`deliver_at ≥ send_time + L`).
//! * Each shard declares a conservative **send horizon**: a lower bound on
//!   the earliest simulated time at which it could still emit a message.
//!   A shard that will never send again declares `None`.
//! * The executor advances every shard to the common window end
//!   `H = S_min + L`, where `S_min` is the minimum over all shard send
//!   horizons *and* all still-undelivered message timestamps (delivering a
//!   message may trigger an immediate reply at its delivery time). Any
//!   message produced inside the window was sent at `t ≥ S_min`, so it is
//!   delivered at `t + L ≥ H` — never inside a window a peer has already
//!   simulated past. When `S_min` is unbounded the shards are decoupled and
//!   each runs to completion without further barriers.
//!
//! Determinism does not depend on lane count or thread schedule: the window
//! sequence is a pure function of the declared horizons and message
//! timestamps, and messages are merged in `(deliver_at, src, seq)` order.

use crate::time::{SimDuration, SimTime};

/// A cross-shard event in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg<M> {
    /// Simulated delivery time at the destination shard.
    pub deliver_at: SimTime,
    /// Source shard index.
    pub src: usize,
    /// Destination shard index.
    pub dst: usize,
    /// Per-source sequence number (tie-break within one delivery time).
    pub seq: u64,
    /// Application payload.
    pub payload: M,
}

impl<M> Msg<M> {
    /// Deterministic merge key: messages are delivered in
    /// `(deliver_at, src, seq)` order regardless of which lane produced
    /// them first in wall-clock time.
    pub fn key(&self) -> (SimTime, usize, u64) {
        (self.deliver_at, self.src, self.seq)
    }
}

/// Undelivered cross-shard messages, merged deterministically.
///
/// # Example
///
/// ```
/// use aqua_sim::pdes::{Mailbox, Msg};
/// use aqua_sim::time::SimTime;
///
/// let mut mbox = Mailbox::new(2);
/// mbox.post(Msg { deliver_at: SimTime::from_secs(3), src: 1, dst: 0, seq: 0, payload: "late" });
/// mbox.post(Msg { deliver_at: SimTime::from_secs(1), src: 0, dst: 1, seq: 0, payload: "early" });
/// assert_eq!(mbox.next_time(), Some(SimTime::from_secs(1)));
/// let inboxes = mbox.deliverable(SimTime::from_secs(2));
/// assert!(inboxes[0].is_empty());
/// assert_eq!(inboxes[1][0].payload, "early");
/// assert_eq!(mbox.next_time(), Some(SimTime::from_secs(3)));
/// ```
#[derive(Debug)]
pub struct Mailbox<M> {
    pending: Vec<Msg<M>>,
    shards: usize,
}

impl<M> Mailbox<M> {
    /// An empty mailbox routing between `shards` shards.
    pub fn new(shards: usize) -> Self {
        Mailbox {
            pending: Vec::new(),
            shards,
        }
    }

    /// Queues a message for a future barrier.
    ///
    /// # Panics
    ///
    /// Panics if the destination shard does not exist.
    pub fn post(&mut self, msg: Msg<M>) {
        assert!(
            msg.dst < self.shards,
            "message to unknown shard {}",
            msg.dst
        );
        self.pending.push(msg);
    }

    /// Earliest undelivered message timestamp, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.pending.iter().map(|m| m.deliver_at).min()
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes every message with `deliver_at < until` and returns them as
    /// per-destination inboxes, each sorted by `(deliver_at, src, seq)` —
    /// the deterministic merge rule that makes delivery order independent
    /// of lane scheduling.
    pub fn deliverable(&mut self, until: SimTime) -> Vec<Vec<Msg<M>>> {
        let mut inboxes: Vec<Vec<Msg<M>>> = (0..self.shards).map(|_| Vec::new()).collect();
        let mut keep = Vec::with_capacity(self.pending.len());
        for msg in self.pending.drain(..) {
            if msg.deliver_at < until {
                inboxes[msg.dst].push(msg);
            } else {
                keep.push(msg);
            }
        }
        self.pending = keep;
        for inbox in &mut inboxes {
            inbox.sort_by_key(|m| m.key());
        }
        inboxes
    }

    /// Drains *all* pending messages into sorted inboxes (the final barrier
    /// of a run, once no shard can send again).
    pub fn drain_all(&mut self) -> Vec<Vec<Msg<M>>> {
        self.deliverable(SimTime::MAX)
    }
}

/// The conservative window rule: given `s_min` — the minimum over all shard
/// send horizons and undelivered message timestamps — every shard may
/// safely simulate up to (exclusive) `s_min + lookahead`. Returns `None`
/// when no shard can ever send again (`s_min` unbounded): the shards are
/// decoupled and can run to completion.
pub fn window_end(s_min: Option<SimTime>, lookahead: SimDuration) -> Option<SimTime> {
    s_min.map(|s| s + lookahead)
}

/// The lookahead for a set of cross-domain links: the minimum latency any
/// cross-shard effect must pay. With per-link α–β cost models this is the
/// smallest launch overhead among the links that cross a shard boundary.
///
/// # Panics
///
/// Panics if `latencies` is empty or the minimum is zero — a zero-lookahead
/// topology cannot make conservative progress.
pub fn lookahead_from_links(latencies: impl IntoIterator<Item = SimDuration>) -> SimDuration {
    let min = latencies
        .into_iter()
        .min()
        .expect("lookahead needs at least one cross-domain link");
    assert!(
        !min.is_zero(),
        "zero cross-domain latency gives no conservative lookahead"
    );
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(at: u64, src: usize, dst: usize, seq: u64) -> Msg<u32> {
        Msg {
            deliver_at: SimTime::from_nanos(at),
            src,
            dst,
            seq,
            payload: 0,
        }
    }

    #[test]
    fn mailbox_delivers_in_time_src_seq_order() {
        let mut mbox = Mailbox::new(2);
        // Posted out of order, from different sources, with a timestamp tie.
        mbox.post(msg(50, 1, 0, 0));
        mbox.post(msg(10, 1, 0, 1));
        mbox.post(msg(10, 0, 0, 7));
        mbox.post(msg(10, 1, 0, 0));
        let inboxes = mbox.deliverable(SimTime::from_nanos(60));
        let keys: Vec<(u64, usize, u64)> = inboxes[0]
            .iter()
            .map(|m| (m.deliver_at.as_nanos(), m.src, m.seq))
            .collect();
        assert_eq!(keys, vec![(10, 0, 7), (10, 1, 0), (10, 1, 1), (50, 1, 0)]);
        assert!(inboxes[1].is_empty());
        assert!(mbox.is_empty());
    }

    #[test]
    fn deliverable_is_exclusive_of_the_window_end() {
        let mut mbox = Mailbox::new(1);
        mbox.post(msg(10, 0, 0, 0));
        mbox.post(msg(20, 0, 0, 1));
        let inboxes = mbox.deliverable(SimTime::from_nanos(20));
        assert_eq!(inboxes[0].len(), 1, "deliver strictly before the barrier");
        assert_eq!(mbox.len(), 1);
        assert_eq!(mbox.next_time(), Some(SimTime::from_nanos(20)));
        let rest = mbox.drain_all();
        assert_eq!(rest[0].len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown shard")]
    fn posting_to_a_missing_shard_is_a_bug() {
        let mut mbox = Mailbox::new(1);
        mbox.post(msg(1, 0, 3, 0));
    }

    #[test]
    fn window_rule_adds_lookahead_and_handles_decoupled_shards() {
        let l = SimDuration::from_micros(7);
        assert_eq!(
            window_end(Some(SimTime::from_secs(1)), l),
            Some(SimTime::from_secs(1) + l)
        );
        assert_eq!(window_end(None, l), None);
    }

    #[test]
    fn lookahead_is_the_minimum_link_latency() {
        let l = lookahead_from_links([
            SimDuration::from_micros(7),
            SimDuration::from_micros(5),
            SimDuration::from_micros(10),
        ]);
        assert_eq!(l, SimDuration::from_micros(5));
    }

    #[test]
    #[should_panic(expected = "zero cross-domain latency")]
    fn zero_lookahead_is_rejected() {
        let _ = lookahead_from_links([SimDuration::ZERO]);
    }
}
