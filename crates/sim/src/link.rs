//! Interconnect bandwidth models.
//!
//! The central hardware fact behind AQUA (paper §2.3, Figure 3a) is that
//! inter-GPU links are only fast for *large* transfers:
//!
//! * NVLink between two A100s peaks around **250 GB/s** observed, but a 2 MB
//!   buffer only achieves ≈ **100 GB/s**, and small buffers are "nearly as
//!   slow as transfers over PCIe connections".
//! * PCIe gen4 ×16 to host DRAM delivers ≈ **25 GB/s** for pinned,
//!   well-batched copies and far less for small/pageable copies.
//!
//! We model a transfer of `s` bytes as taking
//!
//! ```text
//! t(s) = launch_overhead + (s + half_size) / peak_bandwidth
//! ```
//!
//! which is the classic latency–bandwidth (α–β) model: `half_size` is the
//! buffer size at which effective bandwidth reaches half of peak. The default
//! NVLink calibration pins the Figure 3a anchors: ≈ 100 GB/s at 2 MB,
//! ≈ 240 GB/s at 64 MB, and single-digit GB/s below 64 KB.

use crate::time::SimDuration;
use crate::transfer::TransferPlan;
use serde::{Deserialize, Serialize};

/// The kind of interconnect a link models. Used by topologies to pick a
/// [`BandwidthModel`] and by reports to label results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// PCIe between a GPU and host DRAM (pinned-buffer DMA).
    PcieHost,
    /// Direct point-to-point NVLink between two GPUs (2-GPU server).
    NvlinkDirect,
    /// NVLink through an NVSwitch fabric (8-GPU server).
    NvSwitch,
}

impl std::fmt::Display for LinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LinkKind::PcieHost => "pcie-host",
            LinkKind::NvlinkDirect => "nvlink-direct",
            LinkKind::NvSwitch => "nvswitch",
        };
        f.write_str(s)
    }
}

/// Latency–bandwidth model of one directional link.
///
/// # Example
///
/// ```
/// use aqua_sim::link::BandwidthModel;
/// use aqua_sim::transfer::TransferPlan;
///
/// let nvlink = BandwidthModel::nvlink_a100();
/// let pcie = BandwidthModel::pcie_gen4_pinned();
/// // One coalesced 1 GiB copy is ~8x faster over NVLink than PCIe.
/// let big = TransferPlan::coalesced(1 << 30);
/// let speedup = pcie.transfer_time(big).as_secs_f64()
///     / nvlink.transfer_time(big).as_secs_f64();
/// assert!(speedup > 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Peak sustained bandwidth in bytes per second.
    pub peak_bytes_per_sec: f64,
    /// Buffer size (bytes) at which effective bandwidth is half of peak.
    pub half_size_bytes: f64,
    /// Fixed per-transfer software/launch overhead.
    pub launch_overhead: SimDuration,
}

impl BandwidthModel {
    /// Observed NVLink bandwidth between two A100s (paper Figure 3a:
    /// peak ≈ 250 GB/s, ≈ 100 GB/s at 2 MB buffers).
    pub fn nvlink_a100() -> Self {
        BandwidthModel {
            peak_bytes_per_sec: 250e9,
            half_size_bytes: 2.0 * MIB,
            launch_overhead: SimDuration::from_micros(5),
        }
    }

    /// NVLink through an NVSwitch port on an 8-GPU A100 server. Per-port
    /// bandwidth matches direct NVLink; the switch adds a small hop latency.
    pub fn nvswitch_a100() -> Self {
        BandwidthModel {
            peak_bytes_per_sec: 250e9,
            half_size_bytes: 2.0 * MIB,
            launch_overhead: SimDuration::from_micros(7),
        }
    }

    /// PCIe gen4 ×16 host link with pinned staging buffers (the fast path
    /// serving engines use for KV-cache swapping).
    pub fn pcie_gen4_pinned() -> Self {
        BandwidthModel {
            peak_bytes_per_sec: 25e9,
            half_size_bytes: 256.0 * KIB,
            launch_overhead: SimDuration::from_micros(10),
        }
    }

    /// PCIe gen4 host link with pageable memory and framework-level copies —
    /// the slow path taken by engines that move tensors one at a time from
    /// unpinned framework memory (e.g. vLLM's default per-layer LoRA adapter
    /// loading, paper §B.1). The ~1 ms launch overhead models the
    /// framework-level per-tensor dispatch; pageable DMA sustains only a
    /// fraction of the pinned-path bandwidth.
    pub fn pcie_gen4_pageable() -> Self {
        BandwidthModel {
            peak_bytes_per_sec: 4e9,
            half_size_bytes: 256.0 * KIB,
            launch_overhead: SimDuration::from_micros(500),
        }
    }

    /// Default model for a [`LinkKind`].
    pub fn for_kind(kind: LinkKind) -> Self {
        match kind {
            LinkKind::PcieHost => Self::pcie_gen4_pinned(),
            LinkKind::NvlinkDirect => Self::nvlink_a100(),
            LinkKind::NvSwitch => Self::nvswitch_a100(),
        }
    }

    /// Wall time for a single contiguous copy of `bytes`.
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        let wire = (bytes as f64 + self.half_size_bytes) / self.peak_bytes_per_sec;
        self.launch_overhead + SimDuration::from_secs_f64(wire)
    }

    /// Wall time to execute a [`TransferPlan`] on this link. A scattered plan
    /// pays the launch overhead and half-size penalty once per chunk, which is
    /// exactly why the paper coalesces small KV/LoRA tensors before copying.
    pub fn transfer_time(&self, plan: TransferPlan) -> SimDuration {
        match plan {
            TransferPlan::Coalesced { bytes } => self.copy_time(bytes),
            TransferPlan::Scattered {
                chunks,
                chunk_bytes,
            } => {
                if chunks == 0 {
                    return SimDuration::ZERO;
                }
                let per_chunk = self.copy_time(chunk_bytes);
                SimDuration::from_nanos(per_chunk.as_nanos().saturating_mul(chunks))
            }
        }
    }

    /// Effective bandwidth (bytes/s) achieved by one contiguous copy of
    /// `bytes` — the quantity plotted in Figure 3a.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.copy_time(bytes).as_secs_f64()
    }
}

/// One kibibyte in bytes, as `f64` for bandwidth math.
pub const KIB: f64 = 1024.0;
/// One mebibyte in bytes, as `f64` for bandwidth math.
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte in bytes, as `f64` for bandwidth math.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Integer byte-size helpers used across the workspace.
pub mod bytes {
    /// `n` kibibytes in bytes.
    pub const fn kib(n: u64) -> u64 {
        n * 1024
    }
    /// `n` mebibytes in bytes.
    pub const fn mib(n: u64) -> u64 {
        n * 1024 * 1024
    }
    /// `n` gibibytes in bytes.
    pub const fn gib(n: u64) -> u64 {
        n * 1024 * 1024 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3a_anchor_points() {
        let nv = BandwidthModel::nvlink_a100();
        // ~100 GB/s at 2 MB (paper: "it reaches 100 GB/s at 2 MB").
        let at_2mib = nv.effective_bandwidth(bytes::mib(2));
        assert!(
            (80e9..120e9).contains(&at_2mib),
            "2 MiB effective bandwidth {at_2mib:.3e} outside Fig 3a band"
        );
        // Peak ~250 GB/s for large buffers.
        let at_256mib = nv.effective_bandwidth(bytes::mib(256));
        assert!(
            (230e9..251e9).contains(&at_256mib),
            "256 MiB effective bandwidth {at_256mib:.3e} not near peak"
        );
        // Small buffers are PCIe-class or slower.
        let at_64kib = nv.effective_bandwidth(bytes::kib(64));
        assert!(
            at_64kib < 10e9,
            "64 KiB effective bandwidth {at_64kib:.3e} should be PCIe-class"
        );
    }

    #[test]
    fn bandwidth_monotone_in_size() {
        let nv = BandwidthModel::nvlink_a100();
        let mut last = 0.0;
        for exp in 10..32 {
            let bw = nv.effective_bandwidth(1u64 << exp);
            assert!(bw >= last, "effective bandwidth must grow with size");
            last = bw;
        }
        assert!(last <= nv.peak_bytes_per_sec);
    }

    #[test]
    fn scattered_is_slower_than_coalesced() {
        let nv = BandwidthModel::nvlink_a100();
        let total = bytes::mib(320);
        let coalesced = nv.transfer_time(TransferPlan::coalesced(total));
        let scattered = nv.transfer_time(TransferPlan::scattered(256, total / 256));
        assert!(
            scattered.as_secs_f64() > 3.0 * coalesced.as_secs_f64(),
            "scattered {scattered} vs coalesced {coalesced}"
        );
    }

    #[test]
    fn empty_plans_cost_nothing_or_overhead_only() {
        let nv = BandwidthModel::nvlink_a100();
        assert_eq!(
            nv.transfer_time(TransferPlan::scattered(0, 0)),
            SimDuration::ZERO
        );
        assert_eq!(nv.effective_bandwidth(0), 0.0);
    }

    #[test]
    fn pcie_slower_than_nvlink_for_large_buffers() {
        let nv = BandwidthModel::nvlink_a100();
        let pcie = BandwidthModel::pcie_gen4_pinned();
        let plan = TransferPlan::coalesced(bytes::gib(1));
        let ratio = pcie.transfer_time(plan).as_secs_f64() / nv.transfer_time(plan).as_secs_f64();
        assert!(ratio > 8.0, "NVLink should be ~10x PCIe, got {ratio:.1}x");
    }

    #[test]
    fn for_kind_covers_all_kinds() {
        for kind in [
            LinkKind::PcieHost,
            LinkKind::NvlinkDirect,
            LinkKind::NvSwitch,
        ] {
            let m = BandwidthModel::for_kind(kind);
            assert!(m.peak_bytes_per_sec > 0.0);
            assert!(!kind.to_string().is_empty());
        }
    }
}
