//! Deterministic discrete-event queue.
//!
//! The queue orders events by [`SimTime`] and breaks ties by insertion order,
//! so a simulation that schedules the same events always executes them in the
//! same order. Engine drivers (in `aqua-engines`) use this to interleave
//! request arrivals, inference iterations, control-loop ticks and transfer
//! completions.
//!
//! # Backends
//!
//! Two implementations share the exact same pop order:
//!
//! * [`QueueBackend::Calendar`] (the default) — a monotone radix heap, a
//!   calendar-queue relative of the classic binary heap. Entries live in one
//!   arena and are bucketed by the highest bit in which their firing time
//!   differs from the last popped time, so the near-future inserts a
//!   simulation driver produces (step completions a few microseconds ahead)
//!   are O(1) pushes into low buckets, and each entry cascades through at
//!   most 64 buckets over its whole lifetime. Same-time entries collect in
//!   bucket zero in seq order, which makes `peek_time` O(1).
//! * [`QueueBackend::Binary`] — the original `BinaryHeap` of
//!   `(time, seq)`-ordered entries, kept as a differential oracle: the
//!   determinism suite runs whole experiments under both backends and
//!   asserts byte- and digest-identical output.
//!
//! The calendar backend is *monotone-optimised*, not monotone-restricted:
//! pushing an event earlier than the last popped time falls back to a small
//! overflow list, so the API stays total and the two backends stay
//! observably identical on any push/pop interleaving.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

/// Number of radix buckets for `u64` nanosecond keys: one per possible
/// highest-differing-bit position.
const RADIX_BUCKETS: usize = 64;

/// Which event-queue implementation a new [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Monotone radix / calendar queue (default).
    Calendar,
    /// The original binary heap, kept as a differential oracle.
    Binary,
}

/// Process-wide default backend for [`EventQueue::new`] /
/// [`EventQueue::with_capacity`]. 0 = calendar, 1 = binary heap.
static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default backend. The two backends produce
/// identical pop orders by contract, so flipping this mid-run changes
/// performance, never behaviour; the determinism suite relies on that to
/// run whole experiments under each backend and compare digests.
pub fn set_global_backend(backend: QueueBackend) {
    let v = match backend {
        QueueBackend::Calendar => 0,
        QueueBackend::Binary => 1,
    };
    GLOBAL_BACKEND.store(v, AtomicOrdering::Relaxed);
}

/// The process-wide default backend new queues are built with.
pub fn global_backend() -> QueueBackend {
    match GLOBAL_BACKEND.load(AtomicOrdering::Relaxed) {
        1 => QueueBackend::Binary,
        _ => QueueBackend::Calendar,
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use aqua_sim::event::EventQueue;
/// use aqua_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    imp: Imp<T>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
enum Imp<T> {
    Calendar(Radix<T>),
    Binary(BinaryHeap<Entry<T>>),
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The monotone radix-heap backend.
///
/// Entries live in `slots` (an arena with a free list, so `with_capacity`
/// pre-sizes every pending event exactly once); buckets and the bucket-zero
/// `front` ring hold `u32` slot indices, so redistribution moves 4-byte
/// indices, never payloads.
///
/// Invariants:
/// * `front` holds exactly the live entries whose time equals `last`, in
///   ascending `seq` order (pushes append, and `seq` is globally
///   increasing).
/// * If any bucket is non-empty, `front` is non-empty — enforced by eager
///   redistribution after every mutation — so `peek_time` is O(1).
/// * `past` holds the (in practice empty) set of entries pushed earlier
///   than `last`; its members always precede everything else in pop order
///   because `last` only advances.
#[derive(Debug, Clone)]
struct Radix<T> {
    slots: Vec<Option<Entry<T>>>,
    free: Vec<u32>,
    front: VecDeque<u32>,
    buckets: Vec<Vec<u32>>,
    past: Vec<u32>,
    /// Nanosecond timestamp the bucket indices are relative to: the time of
    /// the bucket-zero entries, which is the last popped (or redistributed)
    /// time.
    last: u64,
    len: usize,
}

impl<T> Radix<T> {
    fn new() -> Self {
        Radix {
            slots: Vec::new(),
            free: Vec::new(),
            front: VecDeque::new(),
            buckets: vec![Vec::new(); RADIX_BUCKETS],
            past: Vec::new(),
            last: 0,
            len: 0,
        }
    }

    fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.slots.reserve(capacity);
        q.free.reserve(capacity);
        q
    }

    fn reserve(&mut self, additional: usize) {
        // `free.len()` slots can be reused without growing the arena.
        let grow = additional.saturating_sub(self.free.len());
        self.slots.reserve(grow);
        self.free.reserve(grow);
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Bucket index for a time strictly after `last`: the position of the
    /// highest bit in which they differ.
    #[inline]
    fn bucket_of(last: u64, t: u64) -> usize {
        debug_assert!(t > last);
        (63 - (t ^ last).leading_zeros()) as usize
    }

    #[inline]
    fn slot_time(&self, idx: u32) -> u64 {
        self.slots[idx as usize]
            .as_ref()
            .expect("live slot")
            .time
            .as_nanos()
    }

    #[inline]
    fn slot_seq(&self, idx: u32) -> u64 {
        self.slots[idx as usize].as_ref().expect("live slot").seq
    }

    fn alloc(&mut self, entry: Entry<T>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(entry);
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("event arena fits u32 indices");
            self.slots.push(Some(entry));
            idx
        }
    }

    fn take(&mut self, idx: u32) -> Entry<T> {
        let entry = self.slots[idx as usize].take().expect("live slot");
        self.free.push(idx);
        entry
    }

    fn push(&mut self, entry: Entry<T>) {
        let t = entry.time.as_nanos();
        let idx = self.alloc(entry);
        match t.cmp(&self.last) {
            Ordering::Less => self.past.push(idx),
            // `seq` is globally increasing, so appending keeps `front`
            // sorted by seq.
            Ordering::Equal => self.front.push_back(idx),
            Ordering::Greater => {
                self.buckets[Self::bucket_of(self.last, t)].push(idx);
                if self.front.is_empty() {
                    self.redistribute();
                }
            }
        }
        self.len += 1;
    }

    /// Index of the entry in `past` with the smallest `(time, seq)`, if any.
    fn past_min(&self) -> Option<usize> {
        self.past
            .iter()
            .enumerate()
            .min_by_key(|(_, &idx)| (self.slot_time(idx), self.slot_seq(idx)))
            .map(|(pos, _)| pos)
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        // Everything in `past` fires before `last`, hence before any front
        // or bucket entry (whose times are >= `last`).
        if let Some(pos) = self.past_min() {
            let idx = self.past.swap_remove(pos);
            let e = self.take(idx);
            self.len -= 1;
            return Some((e.time, e.payload));
        }
        let idx = self.front.pop_front()?;
        let e = self.take(idx);
        self.len -= 1;
        if self.front.is_empty() {
            self.redistribute();
        }
        Some((e.time, e.payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        if !self.past.is_empty() {
            return self
                .past_min()
                .map(|pos| SimTime::from_nanos(self.slot_time(self.past[pos])));
        }
        self.front
            .front()
            .map(|&idx| SimTime::from_nanos(self.slot_time(idx)))
    }

    /// Re-establishes the `front` invariant: advances `last` to the
    /// earliest bucketed time and moves that time's entries into `front`.
    /// Every moved entry lands in a strictly lower bucket (it agrees with
    /// the new `last` on all bits above the old bucket's), so an entry
    /// cascades at most [`RADIX_BUCKETS`] times over its lifetime.
    fn redistribute(&mut self) {
        debug_assert!(self.front.is_empty());
        let Some(b) = self.buckets.iter().position(|v| !v.is_empty()) else {
            return;
        };
        let mut bucket = std::mem::take(&mut self.buckets[b]);
        let tm = bucket
            .iter()
            .map(|&idx| self.slot_time(idx))
            .min()
            .expect("bucket is non-empty");
        self.last = tm;
        for &idx in &bucket {
            let t = self.slot_time(idx);
            if t == tm {
                self.front.push_back(idx);
            } else {
                let nb = Self::bucket_of(tm, t);
                debug_assert!(nb < b);
                self.buckets[nb].push(idx);
            }
        }
        // Keep the drained bucket's capacity for future cascades.
        bucket.clear();
        self.buckets[b] = bucket;
        // Bucketed entries arrive in cascade order, not seq order; restore
        // the FIFO tie-break.
        let slots = &self.slots;
        self.front
            .make_contiguous()
            .sort_unstable_by_key(|&idx| slots[idx as usize].as_ref().expect("live slot").seq);
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the process-wide default backend.
    pub fn new() -> Self {
        Self::with_backend(global_backend())
    }

    /// Creates an empty queue with an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let imp = match backend {
            QueueBackend::Calendar => Imp::Calendar(Radix::new()),
            QueueBackend::Binary => Imp::Binary(BinaryHeap::new()),
        };
        EventQueue { imp, next_seq: 0 }
    }

    /// Creates an empty queue with room for `capacity` pending events, so a
    /// long-horizon run (engine drivers queue one event per in-flight step
    /// plus every future arrival of a trace) does not re-grow its arena
    /// mid-simulation.
    pub fn with_capacity(capacity: usize) -> Self {
        let imp = match global_backend() {
            QueueBackend::Calendar => Imp::Calendar(Radix::with_capacity(capacity)),
            QueueBackend::Binary => Imp::Binary(BinaryHeap::with_capacity(capacity)),
        };
        EventQueue { imp, next_seq: 0 }
    }

    /// The backend this queue was built with.
    pub fn backend(&self) -> QueueBackend {
        match &self.imp {
            Imp::Calendar(_) => QueueBackend::Calendar,
            Imp::Binary(_) => QueueBackend::Binary,
        }
    }

    /// Reserves room for at least `additional` more events beyond the
    /// current pending count.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.imp {
            Imp::Calendar(q) => q.reserve(additional),
            Imp::Binary(h) => h.reserve(additional),
        }
    }

    /// Number of pending events the queue can hold without re-growing its
    /// entry storage.
    pub fn capacity(&self) -> usize {
        match &self.imp {
            Imp::Calendar(q) => q.capacity(),
            Imp::Binary(h) => h.capacity(),
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, payload };
        match &mut self.imp {
            Imp::Calendar(q) => q.push(entry),
            Imp::Binary(h) => h.push(entry),
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        match &mut self.imp {
            Imp::Calendar(q) => q.pop(),
            Imp::Binary(h) => h.pop().map(|e| (e.time, e.payload)),
        }
    }

    /// The firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.imp {
            Imp::Calendar(q) => q.peek_time(),
            Imp::Binary(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            Imp::Calendar(q) => q.len,
            Imp::Binary(h) => h.len(),
        }
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn both_backends() -> [EventQueue<u64>; 2] {
        [
            EventQueue::with_backend(QueueBackend::Calendar),
            EventQueue::with_backend(QueueBackend::Binary),
        ]
    }

    #[test]
    fn orders_by_time_then_fifo() {
        for mut q in [
            EventQueue::with_backend(QueueBackend::Calendar),
            EventQueue::with_backend(QueueBackend::Binary),
        ] {
            q.push(SimTime::from_nanos(10), 1);
            q.push(SimTime::from_nanos(5), 2);
            q.push(SimTime::from_nanos(10), 3);
            q.push(SimTime::from_nanos(5), 4);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![2, 4, 1, 3]);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_and_reserve_preallocate() {
        let mut q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
        q.reserve(128);
        assert!(q.capacity() >= 128);
        // Preallocation must not change ordering semantics.
        q.push(SimTime::from_nanos(2), 1);
        q.push(SimTime::from_nanos(1), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 2)));
    }

    #[test]
    fn many_events_drain_sorted() {
        for mut q in both_backends() {
            // Pseudo-shuffled deterministic insertion.
            for i in 0..1000u64 {
                let t = (i * 7919) % 1000;
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
                count += 1;
            }
            assert_eq!(count, 1000);
        }
    }

    #[test]
    fn pushes_into_the_past_stay_total() {
        // The calendar backend is monotone-optimised; pushing earlier than
        // the last popped time must still honour (time, seq) order.
        for mut q in both_backends() {
            q.push(SimTime::from_nanos(100), 0);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(100), 0)));
            q.push(SimTime::from_nanos(50), 1);
            q.push(SimTime::from_nanos(150), 2);
            q.push(SimTime::from_nanos(50), 3);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(50), 1)));
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50)));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(50), 3)));
            assert_eq!(q.pop(), Some((SimTime::from_nanos(150), 2)));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn global_backend_round_trips() {
        assert_eq!(global_backend(), QueueBackend::Calendar);
        set_global_backend(QueueBackend::Binary);
        assert_eq!(global_backend(), QueueBackend::Binary);
        assert_eq!(EventQueue::<u8>::new().backend(), QueueBackend::Binary);
        set_global_backend(QueueBackend::Calendar);
        assert_eq!(EventQueue::<u8>::new().backend(), QueueBackend::Calendar);
    }

    #[test]
    fn interleaved_push_pop_matches_binary_heap() {
        // A driver-like workload: pop the minimum, then schedule new work a
        // short, varying distance into the future.
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut bin = EventQueue::with_backend(QueueBackend::Binary);
        let mut id = 0u64;
        for i in 0..64u64 {
            let t = SimTime::from_nanos((i * 104_729) % 5_000);
            cal.push(t, id);
            bin.push(t, id);
            id += 1;
        }
        let mut rng = 0x9e37_79b9_u64;
        while !cal.is_empty() {
            assert_eq!(cal.peek_time(), bin.peek_time());
            let (tc, pc) = cal.pop().unwrap();
            let (tb, pb) = bin.pop().unwrap();
            assert_eq!((tc, pc), (tb, pb));
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            if id < 4096 && !rng.is_multiple_of(4) {
                let dt = rng % 10_000;
                let t = tc + crate::time::SimDuration::from_nanos(dt);
                cal.push(t, id);
                bin.push(t, id);
                id += 1;
            }
        }
        assert!(bin.is_empty());
    }

    proptest! {
        /// Any push/pop interleaving produces the same observable sequence
        /// under both backends — the property the whole-suite differential
        /// determinism test leans on.
        #[test]
        fn calendar_and_binary_are_observably_identical(
            // (time, op): op 0 pops, anything else pushes at `time`
            // (clustered to force ties).
            ops in proptest::collection::vec((0u64..2_000, 0u64..4), 1..200)
        ) {
            let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
            let mut bin = EventQueue::with_backend(QueueBackend::Binary);
            let mut id = 0u64;
            for (t, op) in ops {
                if op == 0 {
                    prop_assert_eq!(cal.pop(), bin.pop());
                } else {
                    cal.push(SimTime::from_nanos(t), id);
                    bin.push(SimTime::from_nanos(t), id);
                    id += 1;
                }
                prop_assert_eq!(cal.peek_time(), bin.peek_time());
                prop_assert_eq!(cal.len(), bin.len());
            }
            while let Some(e) = bin.pop() {
                prop_assert_eq!(cal.pop(), Some(e));
            }
            prop_assert!(cal.is_empty());
        }
    }
}
