//! Deterministic discrete-event queue.
//!
//! The queue orders events by [`SimTime`] and breaks ties by insertion order,
//! so a simulation that schedules the same events always executes them in the
//! same order. Engine drivers (in `aqua-engines`) use this to interleave
//! request arrivals, inference iterations, control-loop ticks and transfer
//! completions.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use aqua_sim::event::EventQueue;
/// use aqua_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so a
    /// long-horizon run (engine drivers queue one event per in-flight step
    /// plus every future arrival of a trace) does not re-grow the heap
    /// mid-simulation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events beyond the
    /// current pending count.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(5), 2);
        q.push(SimTime::from_nanos(10), 3);
        q.push(SimTime::from_nanos(5), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_and_reserve_preallocate() {
        let mut q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
        q.reserve(128);
        assert!(q.capacity() >= 128);
        // Preallocation must not change ordering semantics.
        q.push(SimTime::from_nanos(2), 1);
        q.push(SimTime::from_nanos(1), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 2)));
    }

    #[test]
    fn many_events_drain_sorted() {
        let mut q = EventQueue::new();
        // Pseudo-shuffled deterministic insertion.
        for i in 0..1000u64 {
            let t = (i * 7919) % 1000;
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, 1000);
    }
}
