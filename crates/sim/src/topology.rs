//! Server topologies: which GPUs exist and how they are wired.
//!
//! The paper evaluates two testbeds (§6): a server with **2 A100s connected by
//! direct point-to-point NVLinks**, and a server with **8 A100s connected
//! through an NVSwitch fabric**. Both also reach 1 TB of host DRAM over PCIe.
//!
//! A topology answers one question for the transfer engine: given a source
//! and destination, which [`BandwidthModel`] applies and which directional
//! *ports* are occupied? Ports are the unit of contention — an NVSwitch
//! fabric is internally non-blocking, so transfers contend only at the source
//! GPU's egress port and the destination GPU's ingress port, which is exactly
//! the behaviour the Figure 18 stress test relies on.

use crate::gpu::{Gpu, GpuId, GpuSpec};
use crate::link::{bytes::gib, BandwidthModel, LinkKind};
use serde::{Deserialize, Serialize};

/// A directional hardware port that serializes transfers crossing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PortId {
    /// NVLink egress (GPU → fabric or peer).
    NvlinkEgress(GpuId),
    /// NVLink ingress (fabric or peer → GPU).
    NvlinkIngress(GpuId),
    /// PCIe device-to-host direction.
    PcieUp(GpuId),
    /// PCIe host-to-device direction.
    PcieDown(GpuId),
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortId::NvlinkEgress(g) => write!(f, "nvlink-egress:{g}"),
            PortId::NvlinkIngress(g) => write!(f, "nvlink-ingress:{g}"),
            PortId::PcieUp(g) => write!(f, "pcie-up:{g}"),
            PortId::PcieDown(g) => write!(f, "pcie-down:{g}"),
        }
    }
}

/// A resolved path between two memory endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkPath {
    /// What kind of interconnect this path crosses.
    pub kind: LinkKind,
    /// Bandwidth model applied to transfers on this path.
    pub model: BandwidthModel,
    /// Directional ports the transfer occupies, in order.
    pub ports: Vec<PortId>,
}

/// Endpoint of a transfer inside one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A GPU's HBM.
    Gpu(GpuId),
    /// Host DRAM.
    HostDram,
}

/// One multi-GPU server: GPUs, their inter-GPU fabric, and host DRAM.
///
/// # Example
///
/// ```
/// use aqua_sim::topology::ServerTopology;
/// use aqua_sim::gpu::{GpuId, GpuSpec};
/// use aqua_sim::link::LinkKind;
///
/// let pair = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
/// let path = pair.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
/// assert_eq!(path.kind, LinkKind::NvlinkDirect);
///
/// let dgx = ServerTopology::nvswitch(8, GpuSpec::a100_80g());
/// assert_eq!(dgx.gpu_count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerTopology {
    gpus: Vec<Gpu>,
    fabric: LinkKind,
    fabric_model: BandwidthModel,
    dram_bytes: u64,
}

impl ServerTopology {
    /// The paper's first testbed: two A100-class GPUs joined by direct
    /// NVLinks, 1 TB host DRAM.
    pub fn nvlink_pair(spec: GpuSpec) -> Self {
        Self::with_fabric(2, spec, LinkKind::NvlinkDirect)
    }

    /// The paper's second testbed: `n` GPUs joined by an NVSwitch fabric
    /// (8 for a DGX A100), 1 TB host DRAM.
    pub fn nvswitch(n: usize, spec: GpuSpec) -> Self {
        Self::with_fabric(n, spec, LinkKind::NvSwitch)
    }

    /// Builds a server with `n` identical GPUs and the given inter-GPU fabric.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `fabric` is [`LinkKind::NvlinkDirect`] with
    /// `n != 2` (direct point-to-point wiring is only modelled for pairs), or
    /// if `fabric` is [`LinkKind::PcieHost`] (the host link is implicit).
    pub fn with_fabric(n: usize, spec: GpuSpec, fabric: LinkKind) -> Self {
        assert!(n > 0, "a server needs at least one GPU");
        assert!(
            fabric != LinkKind::NvlinkDirect || n == 2,
            "direct NVLink topology is only modelled for 2-GPU servers"
        );
        assert!(
            fabric != LinkKind::PcieHost,
            "the GPU fabric cannot be the host PCIe link"
        );
        let gpus = (0..n).map(|i| Gpu::new(GpuId(i), spec.clone())).collect();
        ServerTopology {
            gpus,
            fabric,
            fabric_model: BandwidthModel::for_kind(fabric),
            dram_bytes: gib(1024),
        }
    }

    /// Number of GPUs on this server.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Inter-GPU fabric kind.
    pub fn fabric(&self) -> LinkKind {
        self.fabric
    }

    /// Host DRAM capacity in bytes (1 TiB by default, like both testbeds).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes
    }

    /// Shared read access to a GPU.
    pub fn gpu(&self, id: GpuId) -> &Gpu {
        &self.gpus[id.0]
    }

    /// Mutable access to a GPU (e.g. its HBM allocator).
    pub fn gpu_mut(&mut self, id: GpuId) -> &mut Gpu {
        &mut self.gpus[id.0]
    }

    /// Iterates over the GPUs in id order.
    pub fn gpus(&self) -> impl Iterator<Item = &Gpu> {
        self.gpus.iter()
    }

    /// Path between two distinct GPUs over the inter-GPU fabric, or `None`
    /// if `src == dst` or either id is out of range.
    pub fn gpu_to_gpu_path(&self, src: GpuId, dst: GpuId) -> Option<LinkPath> {
        if src == dst || src.0 >= self.gpus.len() || dst.0 >= self.gpus.len() {
            return None;
        }
        Some(LinkPath {
            kind: self.fabric,
            model: self.fabric_model,
            ports: vec![PortId::NvlinkEgress(src), PortId::NvlinkIngress(dst)],
        })
    }

    /// Path from a GPU to host DRAM (device-to-host PCIe direction).
    pub fn gpu_to_host_path(&self, src: GpuId) -> LinkPath {
        LinkPath {
            kind: LinkKind::PcieHost,
            model: self.gpus[src.0].spec.pcie,
            ports: vec![PortId::PcieUp(src)],
        }
    }

    /// Path from host DRAM to a GPU (host-to-device PCIe direction).
    pub fn host_to_gpu_path(&self, dst: GpuId) -> LinkPath {
        LinkPath {
            kind: LinkKind::PcieHost,
            model: self.gpus[dst.0].spec.pcie,
            ports: vec![PortId::PcieDown(dst)],
        }
    }

    /// Resolves the path between two endpoints, or `None` for a degenerate
    /// pair (same endpoint, or DRAM→DRAM).
    pub fn path(&self, src: Endpoint, dst: Endpoint) -> Option<LinkPath> {
        match (src, dst) {
            (Endpoint::Gpu(a), Endpoint::Gpu(b)) => self.gpu_to_gpu_path(a, b),
            (Endpoint::Gpu(a), Endpoint::HostDram) => Some(self.gpu_to_host_path(a)),
            (Endpoint::HostDram, Endpoint::Gpu(b)) => Some(self.host_to_gpu_path(b)),
            (Endpoint::HostDram, Endpoint::HostDram) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_has_direct_links_both_ways() {
        let s = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        let ab = s.gpu_to_gpu_path(GpuId(0), GpuId(1)).unwrap();
        let ba = s.gpu_to_gpu_path(GpuId(1), GpuId(0)).unwrap();
        assert_eq!(ab.kind, LinkKind::NvlinkDirect);
        assert_eq!(
            ab.ports,
            vec![
                PortId::NvlinkEgress(GpuId(0)),
                PortId::NvlinkIngress(GpuId(1))
            ]
        );
        assert_eq!(
            ba.ports,
            vec![
                PortId::NvlinkEgress(GpuId(1)),
                PortId::NvlinkIngress(GpuId(0))
            ]
        );
    }

    #[test]
    fn self_path_is_none() {
        let s = ServerTopology::nvswitch(8, GpuSpec::a100_80g());
        assert!(s.gpu_to_gpu_path(GpuId(2), GpuId(2)).is_none());
        assert!(s.path(Endpoint::HostDram, Endpoint::HostDram).is_none());
        assert!(s.gpu_to_gpu_path(GpuId(0), GpuId(9)).is_none());
    }

    #[test]
    fn nvswitch_paths_exist_between_all_pairs() {
        let s = ServerTopology::nvswitch(8, GpuSpec::a100_80g());
        for a in 0..8 {
            for b in 0..8 {
                if a == b {
                    continue;
                }
                let p = s.gpu_to_gpu_path(GpuId(a), GpuId(b)).unwrap();
                assert_eq!(p.kind, LinkKind::NvSwitch);
                assert_eq!(p.ports.len(), 2);
            }
        }
    }

    #[test]
    fn host_paths_use_pcie() {
        let s = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        let up = s.gpu_to_host_path(GpuId(0));
        let down = s.host_to_gpu_path(GpuId(0));
        assert_eq!(up.kind, LinkKind::PcieHost);
        assert_eq!(up.ports, vec![PortId::PcieUp(GpuId(0))]);
        assert_eq!(down.ports, vec![PortId::PcieDown(GpuId(0))]);
        // Up and down are separate resources: full duplex.
        assert_ne!(up.ports, down.ports);
    }

    #[test]
    fn endpoint_path_dispatch() {
        let s = ServerTopology::nvswitch(4, GpuSpec::a100_80g());
        assert!(s
            .path(Endpoint::Gpu(GpuId(0)), Endpoint::Gpu(GpuId(1)))
            .is_some());
        assert!(s
            .path(Endpoint::Gpu(GpuId(0)), Endpoint::HostDram)
            .is_some());
        assert!(s
            .path(Endpoint::HostDram, Endpoint::Gpu(GpuId(3)))
            .is_some());
    }

    #[test]
    #[should_panic(expected = "only modelled for 2-GPU")]
    fn direct_nvlink_requires_pair() {
        ServerTopology::with_fabric(4, GpuSpec::a100_80g(), LinkKind::NvlinkDirect);
    }

    #[test]
    fn dram_capacity_is_one_tib() {
        let s = ServerTopology::nvlink_pair(GpuSpec::a100_80g());
        assert_eq!(s.dram_bytes(), gib(1024));
    }
}
