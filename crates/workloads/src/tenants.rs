//! Multi-tenant serving mixes for the gateway front-end.
//!
//! A serving deployment multiplexes tenants with very different traffic
//! shapes onto one engine: interactive chat (ShareGPT-like), code
//! summarization (Table 1's Codellama workload) and non-interactive batch
//! jobs with long prompts (§6's FlexGen workload). [`tenant_trace`] merges
//! one seeded trace per tenant into a single arrival-ordered stream and
//! remembers which tenant each request id belongs to, so the gateway can
//! apply per-tenant admission control and report per-tenant SLOs.

use crate::longprompt::long_prompt_trace;
use crate::sharegpt::{sharegpt_trace, ShareGptConfig};
use aqua_engines::request::InferenceRequest;
use aqua_sim::time::SimTime;
use std::collections::BTreeMap;

/// Tenant display names, indexed by tenant id.
pub const TENANT_NAMES: [&str; 3] = ["chat", "code", "batch"];

/// The interactive chat tenant.
pub const TENANT_CHAT: u32 = 0;
/// The code-summarization tenant.
pub const TENANT_CODE: u32 = 1;
/// The batch long-prompt tenant.
pub const TENANT_BATCH: u32 = 2;

/// Id blocks keep each tenant's request ids disjoint and recognizable.
const ID_BLOCK: u64 = 1_000_000;

/// A merged multi-tenant request stream.
#[derive(Debug, Clone)]
pub struct TenantTrace {
    /// Arrival-ordered `(arrival, request)` pairs across all tenants.
    pub trace: Vec<(SimTime, InferenceRequest)>,
    /// Which tenant each request id belongs to.
    pub tenant_of: BTreeMap<u64, u32>,
}

impl TenantTrace {
    /// Display name for a tenant id.
    pub fn tenant_name(tenant: u32) -> &'static str {
        TENANT_NAMES
            .get(tenant as usize)
            .copied()
            .unwrap_or("unknown")
    }
}

/// Builds the standard three-tenant mix.
///
/// * `chat` — `count` ShareGPT-like requests at `rate` req/s, with replies
///   capped at 256 tokens: interactive turns are short, and the long-output
///   tail of raw ShareGPT belongs to the batch tenant here.
/// * `code` — `count / 2` code-summary requests at `rate / 2` req/s.
/// * `batch` — `1 + count / 32` long-prompt jobs decoding 512-token
///   outputs, all queued at time zero (batch tenants submit a backlog, not
///   an arrival process).
///
/// Deterministic in `(rate, count, seed)`; per-tenant sub-seeds are derived
/// so tenants draw independent streams.
pub fn tenant_trace(rate: f64, count: usize, seed: u64) -> TenantTrace {
    let mut chat_cfg = ShareGptConfig::new(rate, count);
    chat_cfg.output_range = (8, 256);
    let code_cfg = ShareGptConfig::code_summary((rate / 2.0).max(0.5), count / 2);
    let batch_jobs = 1 + count / 32;

    let mut trace = Vec::new();
    let mut tenant_of = BTreeMap::new();
    let mut extend = |part: Vec<(SimTime, InferenceRequest)>, tenant: u32| {
        for (at, req) in part {
            tenant_of.insert(req.id.0, tenant);
            trace.push((at, req));
        }
    };
    extend(sharegpt_trace(&chat_cfg, seed, 0), TENANT_CHAT);
    extend(
        sharegpt_trace(&code_cfg, seed.wrapping_add(0x9E37), ID_BLOCK),
        TENANT_CODE,
    );
    extend(
        long_prompt_trace(batch_jobs, 512, 2 * ID_BLOCK),
        TENANT_BATCH,
    );

    trace.sort_by_key(|(at, req)| (*at, req.id.0));
    TenantTrace { trace, tenant_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_shape_and_ids() {
        let t = tenant_trace(4.0, 64, 7);
        assert_eq!(t.trace.len(), 64 + 32 + 3);
        assert_eq!(t.tenant_of.len(), t.trace.len(), "ids are disjoint");
        assert!(t.trace.windows(2).all(|w| w[0].0 <= w[1].0));
        let batch: Vec<_> = t
            .trace
            .iter()
            .filter(|(_, r)| t.tenant_of[&r.id.0] == TENANT_BATCH)
            .collect();
        assert_eq!(batch.len(), 3);
        for (at, r) in batch {
            assert_eq!(*at, SimTime::ZERO);
            assert_eq!(r.prompt_tokens, crate::longprompt::LONG_PROMPT_TOKENS);
            assert_eq!(r.output_tokens, 512);
        }
        assert!(
            t.trace
                .iter()
                .filter(|(_, r)| t.tenant_of[&r.id.0] == TENANT_CHAT)
                .all(|(_, r)| r.output_tokens <= 256),
            "interactive turns are short"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = tenant_trace(2.0, 40, 11);
        let b = tenant_trace(2.0, 40, 11);
        assert_eq!(a.trace, b.trace);
        let c = tenant_trace(2.0, 40, 12);
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn tenant_names_cover_ids() {
        assert_eq!(TenantTrace::tenant_name(TENANT_CHAT), "chat");
        assert_eq!(TenantTrace::tenant_name(TENANT_CODE), "code");
        assert_eq!(TenantTrace::tenant_name(TENANT_BATCH), "batch");
        assert_eq!(TenantTrace::tenant_name(99), "unknown");
    }
}
