//! ShareGPT-like interactive chat traces.
//!
//! "Inspired by related work, we use the Share-GPT dataset to sample
//! requests for interactive inference … We use the length of the response
//! for a prompt in the dataset and set it as the generation length and use
//! poisson distribution for request arrivals times. Like vLLM, we continue
//! to use request rates between 1-10 per second" (§6).
//!
//! ShareGPT conversations have heavy-tailed lengths; we fit log-normals
//! whose medians (~180-token prompts, ~200-token responses) match the
//! summary statistics commonly reported for the dataset.

use crate::sampling::Sampler;
use aqua_engines::request::InferenceRequest;
use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Parameters of a ShareGPT-like trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShareGptConfig {
    /// Request arrival rate, requests/s (the paper sweeps 1–10).
    pub rate: f64,
    /// Number of requests.
    pub count: usize,
    /// Log-normal location of prompt length.
    pub prompt_mu: f64,
    /// Log-normal scale of prompt length.
    pub prompt_sigma: f64,
    /// Log-normal location of response length.
    pub output_mu: f64,
    /// Log-normal scale of response length.
    pub output_sigma: f64,
    /// Clamp bounds for prompt tokens.
    pub prompt_range: (u64, u64),
    /// Clamp bounds for output tokens.
    pub output_range: (u64, u64),
}

impl ShareGptConfig {
    /// A trace of `count` requests at `rate` req/s with the default
    /// ShareGPT-like length distributions.
    pub fn new(rate: f64, count: usize) -> Self {
        ShareGptConfig {
            rate,
            count,
            prompt_mu: 5.2, // median ≈ 180 tokens
            prompt_sigma: 0.9,
            output_mu: 5.3, // median ≈ 200 tokens
            output_sigma: 0.8,
            prompt_range: (16, 2048),
            output_range: (8, 1024),
        }
    }
}

impl ShareGptConfig {
    /// The Codellama code-summary workload of Table 1: "we randomly sample
    /// python files from our own code base and prompt the LLM to summarize
    /// them" — medium-length code prompts, short summaries.
    pub fn code_summary(rate: f64, count: usize) -> Self {
        ShareGptConfig {
            rate,
            count,
            prompt_mu: 5.5, // median ≈ 250 tokens of code
            prompt_sigma: 0.5,
            output_mu: 4.5, // median ≈ 90-token summary
            output_sigma: 0.5,
            prompt_range: (64, 1024),
            output_range: (16, 256),
        }
    }
}

/// Generates a `(arrival, request)` trace. Request ids start at `id_base`
/// so multiple traces can coexist in one experiment.
pub fn sharegpt_trace(
    config: &ShareGptConfig,
    seed: u64,
    id_base: u64,
) -> Vec<(SimTime, InferenceRequest)> {
    let mut s = Sampler::new(seed);
    let arrivals = s.poisson_arrivals(SimTime::ZERO, config.rate, config.count);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, at)| {
            let prompt = s.token_count(
                config.prompt_mu,
                config.prompt_sigma,
                config.prompt_range.0,
                config.prompt_range.1,
            );
            let output = s.token_count(
                config.output_mu,
                config.output_sigma,
                config.output_range.0,
                config.output_range.1,
            );
            (
                at,
                InferenceRequest::text(id_base + i as u64, prompt, output),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shape() {
        let cfg = ShareGptConfig::new(5.0, 200);
        let trace = sharegpt_trace(&cfg, 1, 100);
        assert_eq!(trace.len(), 200);
        assert!(
            trace.windows(2).all(|w| w[0].0 <= w[1].0),
            "sorted arrivals"
        );
        assert_eq!(trace[0].1.id.0, 100);
        assert_eq!(trace[199].1.id.0, 299);
        for (_, r) in &trace {
            assert!((16..=2048).contains(&r.prompt_tokens));
            assert!((8..=1024).contains(&r.output_tokens));
            assert!(r.adapter.is_none());
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = ShareGptConfig::new(2.0, 50);
        assert_eq!(sharegpt_trace(&cfg, 9, 0), sharegpt_trace(&cfg, 9, 0));
        assert_ne!(sharegpt_trace(&cfg, 9, 0), sharegpt_trace(&cfg, 10, 0));
    }

    #[test]
    fn median_lengths_are_sharegpt_like() {
        let cfg = ShareGptConfig::new(5.0, 4000);
        let trace = sharegpt_trace(&cfg, 7, 0);
        let mut prompts: Vec<u64> = trace.iter().map(|(_, r)| r.prompt_tokens).collect();
        prompts.sort_unstable();
        let median = prompts[prompts.len() / 2];
        assert!((100..350).contains(&median), "prompt median {median}");
    }
}
