//! LoRA-adapter workloads (Figures 8 and 12, §A.2).
//!
//! Each request is assigned one adapter uniformly at random from a pool
//! ("we randomly assign one of the 30 adapters to a request and this
//! sometimes results in LoRA cache hits", §6.1). Prompt/response lengths
//! follow the interactive distribution but with shorter outputs so adapter
//! loading is a meaningful share of request time.

use crate::sampling::Sampler;
use aqua_engines::request::InferenceRequest;
use aqua_sim::time::SimTime;

/// Generates a LoRA trace: `count` requests at `rate` req/s, each needing
/// one of `pool_size` adapters chosen uniformly.
///
/// # Panics
///
/// Panics if `pool_size == 0`.
pub fn lora_trace(
    rate: f64,
    count: usize,
    pool_size: usize,
    seed: u64,
    id_base: u64,
) -> Vec<(SimTime, InferenceRequest)> {
    assert!(pool_size > 0, "adapter pool must be non-empty");
    let mut s = Sampler::new(seed);
    let arrivals = s.poisson_arrivals(SimTime::ZERO, rate, count);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, at)| {
            let prompt = s.token_count(5.0, 0.8, 16, 1024);
            let output = s.token_count(4.2, 0.7, 8, 256);
            let adapter = s.index(pool_size);
            (
                at,
                InferenceRequest::with_adapter(id_base + i as u64, prompt, output, adapter),
            )
        })
        .collect()
}

/// Generates a LoRA trace with Zipf-skewed adapter popularity (exponent
/// `skew`; 0 = uniform). Real adapter traffic is heavy-headed — a few
/// popular adapters dominate — which raises the GPU cache hit rate and
/// shrinks the loading cost AQUA accelerates (the `ablate_lora_skew`
/// study).
///
/// # Panics
///
/// Panics if `pool_size == 0` or `skew < 0`.
pub fn lora_trace_skewed(
    rate: f64,
    count: usize,
    pool_size: usize,
    skew: f64,
    seed: u64,
    id_base: u64,
) -> Vec<(SimTime, InferenceRequest)> {
    assert!(pool_size > 0, "adapter pool must be non-empty");
    let mut s = Sampler::new(seed);
    let arrivals = s.poisson_arrivals(SimTime::ZERO, rate, count);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, at)| {
            let prompt = s.token_count(5.0, 0.8, 16, 1024);
            let output = s.token_count(4.2, 0.7, 8, 256);
            let adapter = s.zipf(pool_size, skew);
            (
                at,
                InferenceRequest::with_adapter(id_base + i as u64, prompt, output, adapter),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_request_has_an_adapter() {
        let trace = lora_trace(10.0, 200, 30, 5, 0);
        assert_eq!(trace.len(), 200);
        let used: HashSet<usize> = trace.iter().map(|(_, r)| r.adapter.unwrap()).collect();
        assert!(used.len() > 15, "uniform draw covers much of the pool");
        assert!(used.iter().all(|&a| a < 30));
    }

    #[test]
    fn skewed_trace_concentrates_on_popular_adapters() {
        let trace = lora_trace_skewed(5.0, 500, 30, 1.5, 3, 0);
        let mut counts = vec![0usize; 30];
        for (_, r) in &trace {
            counts[r.adapter.unwrap()] += 1;
        }
        assert!(counts[0] > counts[15] * 2, "head dominates: {counts:?}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(lora_trace(2.0, 50, 10, 1, 0), lora_trace(2.0, 50, 10, 1, 0));
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn empty_pool_rejected() {
        lora_trace(1.0, 1, 0, 0, 0);
    }
}
