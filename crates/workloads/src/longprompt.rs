//! Long-prompt (FlexGen) workload.
//!
//! "On an A100 GPU, it is impossible to infer a single prompt of 8,000
//! tokens — the context limit for the popular GPT-4 … We will use prompts
//! of length 8,000 in our experiments" (§6). The jobs are non-interactive;
//! the Figure 7 metric is tokens generated in a ten-minute window, so the
//! trace keeps the engine busy for the whole window.

use aqua_engines::request::InferenceRequest;
use aqua_sim::time::SimTime;

/// The paper's long-prompt length.
pub const LONG_PROMPT_TOKENS: u64 = 8_000;

/// Generates `count` back-to-back long-prompt jobs, each generating
/// `output_tokens` tokens, all submitted at time zero (a batch queue).
pub fn long_prompt_trace(
    count: usize,
    output_tokens: u64,
    id_base: u64,
) -> Vec<(SimTime, InferenceRequest)> {
    (0..count)
        .map(|i| {
            (
                SimTime::ZERO,
                InferenceRequest::text(id_base + i as u64, LONG_PROMPT_TOKENS, output_tokens),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_are_long() {
        let trace = long_prompt_trace(4, 512, 10);
        assert_eq!(trace.len(), 4);
        for (at, r) in &trace {
            assert_eq!(*at, SimTime::ZERO);
            assert_eq!(r.prompt_tokens, LONG_PROMPT_TOKENS);
            assert_eq!(r.output_tokens, 512);
        }
        assert_eq!(trace[3].1.id.0, 13);
    }
}
