//! Closed-loop multi-turn chatbot workload (Figure 13 / §8).
//!
//! "We simulate 25 users of the chatbot and issue one prompt per user, wait
//! for the response from the LLM. After the response from the LLM, we issue
//! the prompt again for every user in a poisson distribution. We ran this
//! experiment for multiple turns."
//!
//! The workload is closed-loop: turn `k+1`'s arrival times depend on turn
//! `k`'s completion times, so the harness alternates between running the
//! engine and asking [`ChatWorkload::next_turn`] for the next wave.

use crate::sampling::Sampler;
use aqua_engines::request::InferenceRequest;
use aqua_metrics::requests::RequestRecord;
use aqua_sim::time::{SimDuration, SimTime};

/// Multi-turn chat workload state.
///
/// Conversation history accumulates: each turn re-feeds the full history as
/// the prompt (how chat front-ends drive LLM APIs), so contexts grow turn
/// over turn — the reason the paper's chat workload stresses GPU memory.
#[derive(Debug, Clone)]
pub struct ChatWorkload {
    users: usize,
    turns: usize,
    think_rate: f64,
    sampler: Sampler,
    next_id: u64,
    issued_turns: usize,
    history_tokens: Vec<u64>,
}

impl ChatWorkload {
    /// `users` simulated users, `turns` turns each, with exponential think
    /// time at `think_rate` (events/s) after each response.
    ///
    /// # Panics
    ///
    /// Panics if `users == 0`, `turns == 0` or `think_rate <= 0`.
    pub fn new(users: usize, turns: usize, think_rate: f64, seed: u64) -> Self {
        assert!(users > 0 && turns > 0, "need users and turns");
        assert!(think_rate > 0.0, "think rate must be positive");
        ChatWorkload {
            users,
            turns,
            think_rate,
            sampler: Sampler::new(seed),
            next_id: 0,
            issued_turns: 0,
            history_tokens: vec![0; users],
        }
    }

    /// Total turns configured.
    pub fn turns(&self) -> usize {
        self.turns
    }

    /// Turns issued so far.
    pub fn issued_turns(&self) -> usize {
        self.issued_turns
    }

    /// The first turn: every user sends a prompt shortly after time zero.
    pub fn first_turn(&mut self) -> Vec<(SimTime, InferenceRequest)> {
        assert_eq!(self.issued_turns, 0, "first_turn called twice");
        self.issued_turns = 1;
        (0..self.users)
            .map(|user| {
                let at = SimTime::ZERO
                    + SimDuration::from_secs_f64(self.sampler.exponential(self.think_rate));
                (at, self.fresh_request(user))
            })
            .collect()
    }

    /// The next turn, given the previous turn's completion records: each
    /// user re-prompts one think-time after their response arrived. Returns
    /// `None` when all turns are issued.
    pub fn next_turn(
        &mut self,
        previous: &[RequestRecord],
    ) -> Option<Vec<(SimTime, InferenceRequest)>> {
        if self.issued_turns >= self.turns {
            return None;
        }
        self.issued_turns += 1;
        Some(
            previous
                .iter()
                .enumerate()
                .map(|(user, r)| {
                    // The response joins the user's history.
                    self.history_tokens[user % self.users] += r.output_tokens;
                    let think =
                        SimDuration::from_secs_f64(self.sampler.exponential(self.think_rate));
                    (r.completion + think, self.fresh_request(user % self.users))
                })
                .collect(),
        )
    }

    fn fresh_request(&mut self, user: usize) -> InferenceRequest {
        let id = self.next_id;
        self.next_id += 1;
        let new_text = self.sampler.token_count(5.2, 0.8, 32, 1024);
        self.history_tokens[user] += new_text;
        let output = self.sampler.token_count(4.8, 0.7, 16, 384);
        InferenceRequest::text(id, self.history_tokens[user], output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_records(n: usize, done_s: u64) -> Vec<RequestRecord> {
        (0..n as u64)
            .map(|i| RequestRecord {
                id: i,
                arrival: SimTime::ZERO,
                first_token: SimTime::from_secs(1),
                completion: SimTime::from_secs(done_s),
                output_tokens: 10,
            })
            .collect()
    }

    #[test]
    fn turn_progression() {
        let mut w = ChatWorkload::new(25, 4, 0.2, 11);
        let t1 = w.first_turn();
        assert_eq!(t1.len(), 25);
        assert_eq!(w.issued_turns(), 1);

        let t2 = w.next_turn(&fake_records(25, 30)).unwrap();
        assert_eq!(t2.len(), 25);
        assert!(t2.iter().all(|(at, _)| *at > SimTime::from_secs(30)));

        w.next_turn(&fake_records(25, 60)).unwrap();
        w.next_turn(&fake_records(25, 90)).unwrap();
        assert!(
            w.next_turn(&fake_records(25, 120)).is_none(),
            "4 turns only"
        );
    }

    #[test]
    fn ids_are_unique_across_turns() {
        let mut w = ChatWorkload::new(5, 3, 1.0, 2);
        let mut ids = Vec::new();
        for (_, r) in w.first_turn() {
            ids.push(r.id.0);
        }
        for (_, r) in w.next_turn(&fake_records(5, 10)).unwrap() {
            ids.push(r.id.0);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    #[should_panic(expected = "first_turn called twice")]
    fn double_first_turn_rejected() {
        let mut w = ChatWorkload::new(2, 2, 1.0, 0);
        w.first_turn();
        w.first_turn();
    }
}
