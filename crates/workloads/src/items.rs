//! Producer-side item streams (images and audio clips).
//!
//! Image producers draw from the Parti prompts dataset and audio producers
//! from the models' default prompt sets (§6); one request = one item. The
//! Figure 10 elasticity experiment varies the arrival rate in phases ("we
//! issue a 100 requests at 1 request/second … At the 400 second mark, we
//! send 250 inference requests at the high rate of 5 requests/second").

use crate::sampling::Sampler;
use aqua_engines::request::InferenceRequest;
use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One constant-rate phase of an item stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePhase {
    /// When the phase begins.
    pub start: SimTime,
    /// Arrival rate within the phase, items/s.
    pub rate: f64,
    /// Number of items issued in the phase.
    pub count: usize,
}

/// A single-phase Poisson item stream from time zero.
pub fn item_trace(
    rate: f64,
    count: usize,
    seed: u64,
    id_base: u64,
) -> Vec<(SimTime, InferenceRequest)> {
    phased_item_trace(
        &[RatePhase {
            start: SimTime::ZERO,
            rate,
            count,
        }],
        seed,
        id_base,
    )
}

/// A multi-phase item stream (Figure 10's 1 req/s then 5 req/s pattern).
///
/// # Panics
///
/// Panics if any phase has a non-positive rate.
pub fn phased_item_trace(
    phases: &[RatePhase],
    seed: u64,
    id_base: u64,
) -> Vec<(SimTime, InferenceRequest)> {
    let mut s = Sampler::new(seed);
    let mut out = Vec::new();
    let mut id = id_base;
    for phase in phases {
        for at in s.poisson_arrivals(phase.start, phase.rate, phase.count) {
            out.push((at, InferenceRequest::item(id)));
            id += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_phase_stream() {
        let trace = item_trace(2.0, 100, 3, 500);
        assert_eq!(trace.len(), 100);
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(trace[0].1.id.0, 500);
        assert!(trace.iter().all(|(_, r)| r.output_tokens == 1));
    }

    #[test]
    fn figure10_phases() {
        let phases = [
            RatePhase {
                start: SimTime::from_secs(150),
                rate: 1.0,
                count: 100,
            },
            RatePhase {
                start: SimTime::from_secs(400),
                rate: 5.0,
                count: 250,
            },
        ];
        let trace = phased_item_trace(&phases, 8, 0);
        assert_eq!(trace.len(), 350);
        assert!(trace[0].0 >= SimTime::from_secs(150));
        assert!(trace[100].0 >= SimTime::from_secs(400));
        // High-rate phase packs 250 requests into ~50 s.
        let hi_span = trace[349].0.as_secs_f64() - trace[100].0.as_secs_f64();
        assert!(hi_span < 80.0, "high-rate span {hi_span}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(item_trace(1.0, 10, 4, 0), item_trace(1.0, 10, 4, 0));
    }
}
