//! Seeded samplers: exponential, log-normal and Poisson-process arrivals.
//!
//! Implemented from first principles (inverse-CDF and Box–Muller) so the
//! workspace needs only the `rand` core crate.

use aqua_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic sampler seeded once per workload.
#[derive(Debug, Clone)]
pub struct Sampler {
    rng: StdRng,
}

impl Sampler {
    /// Creates a sampler from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Sampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.random_range(0..n)
    }

    /// Exponential with rate `lambda` (inverse CDF).
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        let u = 1.0 - self.uniform(); // avoid ln(0)
        -u.ln() / lambda
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with location `mu` and scale `sigma` (of the underlying
    /// normal).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Log-normal sample rounded to a token count and clamped to
    /// `[min, max]`.
    pub fn token_count(&mut self, mu: f64, sigma: f64, min: u64, max: u64) -> u64 {
        (self.log_normal(mu, sigma).round() as u64).clamp(min, max)
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` (rank 0 most
    /// popular). Computed by inverse CDF over the normalized weights; used
    /// to model skewed LoRA adapter popularity.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over an empty set");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut u = self.uniform() * norm;
        for k in 1..=n {
            u -= (k as f64).powf(-s);
            if u <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Arrival times of a Poisson process with `rate` events/s, starting at
    /// `start`, producing `count` events.
    pub fn poisson_arrivals(&mut self, start: SimTime, rate: f64, count: usize) -> Vec<SimTime> {
        let mut t = start;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            t += SimDuration::from_secs_f64(self.exponential(rate));
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Sampler::new(42);
        let mut b = Sampler::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = Sampler::new(43);
        assert_ne!(Sampler::new(42).uniform(), c.uniform());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut s = Sampler::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.2).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn poisson_arrivals_are_ordered_with_right_rate() {
        let mut s = Sampler::new(1);
        let arrivals = s.poisson_arrivals(SimTime::from_secs(10), 5.0, 1000);
        assert_eq!(arrivals.len(), 1000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals[0] >= SimTime::from_secs(10));
        let span = arrivals.last().unwrap().as_secs_f64() - 10.0;
        let rate = 1000.0 / span;
        assert!((4.0..6.0).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut s = Sampler::new(3);
        let mut v: Vec<f64> = (0..20_000).map(|_| s.log_normal(5.0, 0.8)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let expected = 5.0f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.1,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn token_count_respects_clamp() {
        let mut s = Sampler::new(9);
        for _ in 0..1000 {
            let t = s.token_count(5.0, 2.0, 16, 512);
            assert!((16..=512).contains(&t));
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        Sampler::new(0).exponential(0.0);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut s = Sampler::new(4);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[s.zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[4], "rank 0 beats rank 4: {counts:?}");
        assert!(counts[0] > counts[9] * 3, "heavy head: {counts:?}");
        // Exponent 0 degenerates to uniform.
        let mut s = Sampler::new(4);
        let mut uni = [0usize; 4];
        for _ in 0..8_000 {
            uni[s.zipf(4, 0.0)] += 1;
        }
        for c in uni {
            assert!((1500..2500).contains(&c), "uniform-ish: {uni:?}");
        }
    }

    proptest! {
        #[test]
        fn zipf_in_range(seed in 0u64..500, n in 1usize..50) {
            let mut s = Sampler::new(seed);
            for _ in 0..20 {
                prop_assert!(s.zipf(n, 1.0) < n);
            }
        }

        #[test]
        fn index_in_range(seed in 0u64..1000, n in 1usize..100) {
            let mut s = Sampler::new(seed);
            for _ in 0..50 {
                prop_assert!(s.index(n) < n);
            }
        }
    }
}
