//! # aqua-workloads — seeded synthetic inference workloads
//!
//! The paper's evaluation drives AQUA with five workload families (§6,
//! Tables 1–3). The original datasets (ShareGPT, Parti prompts, audio
//! descriptions, the authors' own Python files) enter the evaluation only
//! through *length and arrival distributions*, so this crate generates
//! statistically equivalent traces from explicit seeds:
//!
//! * [`sharegpt`] — interactive chat requests with ShareGPT-like log-normal
//!   prompt/response lengths and Poisson arrivals at 1–10 req/s.
//! * [`longprompt`] — FlexGen's non-interactive long-prompt jobs (8,000
//!   tokens, the GPT-4 context limit the paper cites).
//! * [`lora`] — requests that each need one adapter from a pool (30×320 MB
//!   in Figure 8; 200 adapters of 160/320 MB in Figure 12).
//! * [`chat`] — the closed-loop multi-turn chatbot of Figure 13 (25 users,
//!   think-time between turns).
//! * [`items`] — producer-side image/audio item streams (Parti-style), with
//!   multi-phase rates for the Figure 10 elasticity timeline.
//! * [`sampling`] — the seeded samplers (exponential, log-normal, Poisson
//!   process) everything above is built on. No `rand_distr` dependency:
//!   the transforms are implemented here and unit-tested.
//! * [`tenants`] — merged multi-tenant mixes (chat + code + batch) for the
//!   serving gateway in `aqua-gateway`.

pub mod chat;
pub mod items;
pub mod longprompt;
pub mod lora;
pub mod sampling;
pub mod sharegpt;
pub mod tenants;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::chat::ChatWorkload;
    pub use crate::items::{item_trace, phased_item_trace, RatePhase};
    pub use crate::longprompt::long_prompt_trace;
    pub use crate::lora::{lora_trace, lora_trace_skewed};
    pub use crate::sampling::Sampler;
    pub use crate::sharegpt::{sharegpt_trace, ShareGptConfig};
    pub use crate::tenants::{tenant_trace, TenantTrace};
}

pub use prelude::*;
