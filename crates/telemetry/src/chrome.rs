//! Chrome/Perfetto trace-event export.
//!
//! [`chrome_trace`] renders a journal into the JSON object format understood
//! by `chrome://tracing`, Perfetto and speedscope: one process (`pid`) per
//! simulated server plus a process for engines and control plane, one thread
//! (`tid`) per link lane or engine scope, `"X"` duration events for
//! transfers/slices/window fetches, `"i"` instants for discrete actions and
//! `"C"` counter tracks for gauges. Timestamps are microseconds of simulated
//! time; events are sorted so `ts` is monotone within every `tid`.

use crate::event::{fmt_f64, TraceEvent};
use crate::json::escape_into;
use std::collections::BTreeMap;

/// The `pid` used for engines, informers and the coordinator (servers get
/// `server + 1`).
const CONTROL_PID: u32 = 0;

/// One rendered trace event, before sorting.
struct Entry {
    ts: u64,
    pid: u32,
    tid: u32,
    ph: char,
    name: String,
    cat: &'static str,
    dur: Option<u64>,
    /// `(key, pre-rendered JSON fragment)` pairs.
    args: Vec<(&'static str, String)>,
}

/// Deterministic `(pid, label) -> tid` assignment in first-appearance order.
#[derive(Default)]
struct Lanes {
    ids: BTreeMap<(u32, String), u32>,
    order: Vec<(u32, String, u32)>,
    next: u32,
}

impl Lanes {
    fn tid(&mut self, pid: u32, label: &str) -> u32 {
        if let Some(&tid) = self.ids.get(&(pid, label.to_owned())) {
            return tid;
        }
        self.next += 1;
        let tid = self.next;
        self.ids.insert((pid, label.to_owned()), tid);
        self.order.push((pid, label.to_owned(), tid));
        tid
    }
}

fn us(t: crate::time::SimTime) -> u64 {
    t.as_nanos() / 1_000
}

fn span(start: crate::time::SimTime, end: crate::time::SimTime) -> (u64, u64) {
    (us(start), end.duration_since(start).as_nanos() / 1_000)
}

/// Renders a journal as a complete Chrome trace-event JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut lanes = Lanes::default();
    let mut entries: Vec<Entry> = Vec::with_capacity(events.len());
    let mut servers: BTreeMap<u32, ()> = BTreeMap::new();

    let instant = |lanes: &mut Lanes, pid: u32, label: &str, name: &str, ts, args| Entry {
        ts,
        pid,
        tid: lanes.tid(pid, label),
        ph: 'i',
        name: name.to_owned(),
        cat: "event",
        dur: None,
        args,
    };

    for e in events {
        match e {
            TraceEvent::TransferEnqueued {
                server,
                lane,
                bytes,
                chunks,
                at,
            } => {
                servers.insert(*server, ());
                let mut en = instant(
                    &mut lanes,
                    server + 1,
                    lane,
                    "transfer-enqueued",
                    us(*at),
                    vec![("bytes", bytes.to_string()), ("chunks", chunks.to_string())],
                );
                en.cat = "transfer";
                entries.push(en);
            }
            TraceEvent::TransferStarted {
                server,
                lane,
                bytes,
                at,
            } => {
                servers.insert(*server, ());
                let mut en = instant(
                    &mut lanes,
                    server + 1,
                    lane,
                    "transfer-started",
                    us(*at),
                    vec![("bytes", bytes.to_string())],
                );
                en.cat = "transfer";
                entries.push(en);
            }
            TraceEvent::TransferCompleted {
                server,
                lane,
                bytes,
                chunks,
                start,
                end,
            } => {
                servers.insert(*server, ());
                let (ts, dur) = span(*start, *end);
                entries.push(Entry {
                    ts,
                    pid: server + 1,
                    tid: lanes.tid(server + 1, lane),
                    ph: 'X',
                    name: "transfer".to_owned(),
                    cat: "transfer",
                    dur: Some(dur),
                    args: vec![("bytes", bytes.to_string()), ("chunks", chunks.to_string())],
                });
            }
            TraceEvent::MemAllocated {
                gpu,
                kind,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gpu,
                    "mem-alloc",
                    us(*at),
                    vec![
                        ("kind", format!("\"{}\"", esc(kind))),
                        ("bytes", bytes.to_string()),
                    ],
                ));
            }
            TraceEvent::MemFreed {
                gpu,
                kind,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gpu,
                    "mem-free",
                    us(*at),
                    vec![
                        ("kind", format!("\"{}\"", esc(kind))),
                        ("bytes", bytes.to_string()),
                    ],
                ));
            }
            TraceEvent::LeaseGranted {
                producer,
                lease,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    producer,
                    "lease-granted",
                    us(*at),
                    vec![("lease", lease.to_string()), ("bytes", bytes.to_string())],
                ));
            }
            TraceEvent::LeaseAllocated {
                consumer,
                site,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    consumer,
                    "lease-allocated",
                    us(*at),
                    vec![
                        ("site", format!("\"{}\"", esc(site))),
                        ("bytes", bytes.to_string()),
                    ],
                ));
            }
            TraceEvent::LeaseFreed {
                consumer,
                lease,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    consumer,
                    "lease-freed",
                    us(*at),
                    vec![("lease", lease.to_string()), ("bytes", bytes.to_string())],
                ));
            }
            TraceEvent::LeasePromoted {
                consumer,
                lease,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    consumer,
                    "lease-promoted",
                    us(*at),
                    vec![("lease", lease.to_string()), ("bytes", bytes.to_string())],
                ));
            }
            TraceEvent::Donated { gpu, bytes, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gpu,
                    "donated",
                    us(*at),
                    vec![("bytes", bytes.to_string())],
                ));
            }
            TraceEvent::Compacted { gpu, bytes, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gpu,
                    "compacted",
                    us(*at),
                    vec![("bytes", bytes.to_string())],
                ));
            }
            TraceEvent::ReclaimRequested { producer, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    producer,
                    "reclaim-requested",
                    us(*at),
                    Vec::new(),
                ));
            }
            TraceEvent::ReclaimReleased {
                producer,
                lease,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    producer,
                    "reclaim-released",
                    us(*at),
                    vec![("lease", lease.to_string()), ("bytes", bytes.to_string())],
                ));
            }
            TraceEvent::Reclaimed { gpu, bytes, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gpu,
                    "reclaimed",
                    us(*at),
                    vec![("bytes", bytes.to_string())],
                ));
            }
            TraceEvent::CoordinatorVerb { verb, detail, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    "coordinator",
                    verb,
                    us(*at),
                    vec![("detail", format!("\"{}\"", esc(detail)))],
                ));
            }
            TraceEvent::InformerDecision { gpu, decision, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gpu,
                    "informer-decision",
                    us(*at),
                    vec![("decision", format!("\"{}\"", esc(decision)))],
                ));
            }
            TraceEvent::RequestAdmitted {
                engine,
                request,
                waiting,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    engine,
                    "admitted",
                    us(*at),
                    vec![
                        ("request", request.to_string()),
                        ("waiting", waiting.to_string()),
                    ],
                ));
            }
            TraceEvent::RequestPreempted {
                engine,
                request,
                policy,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    engine,
                    "preempted",
                    us(*at),
                    vec![
                        ("request", request.to_string()),
                        ("policy", format!("\"{}\"", esc(policy))),
                    ],
                ));
            }
            TraceEvent::SliceFinished {
                engine,
                slice,
                active,
                tokens,
                start,
                end,
            } => {
                let (ts, dur) = span(*start, *end);
                entries.push(Entry {
                    ts,
                    pid: CONTROL_PID,
                    tid: lanes.tid(CONTROL_PID, engine),
                    ph: 'X',
                    name: "slice".to_owned(),
                    cat: "scheduler",
                    dur: Some(dur),
                    args: vec![
                        ("slice", slice.to_string()),
                        ("active", active.to_string()),
                        ("tokens", tokens.to_string()),
                    ],
                });
            }
            TraceEvent::WindowFetched {
                engine,
                bytes,
                start,
                end,
            } => {
                let (ts, dur) = span(*start, *end);
                entries.push(Entry {
                    ts,
                    pid: CONTROL_PID,
                    tid: lanes.tid(CONTROL_PID, engine),
                    ph: 'X',
                    name: "window-fetch".to_owned(),
                    cat: "scheduler",
                    dur: Some(dur),
                    args: vec![("bytes", bytes.to_string())],
                });
            }
            TraceEvent::Gauge { name, value, at } => {
                entries.push(Entry {
                    ts: us(*at),
                    pid: CONTROL_PID,
                    tid: 0,
                    ph: 'C',
                    name: name.clone(),
                    cat: "gauge",
                    dur: None,
                    args: vec![("value", fmt_f64(*value))],
                });
            }
            TraceEvent::FaultInjected { kind, target, at } => {
                let mut en = instant(
                    &mut lanes,
                    CONTROL_PID,
                    "faults",
                    "fault-injected",
                    us(*at),
                    vec![
                        ("kind", format!("\"{}\"", esc(kind))),
                        ("target", format!("\"{}\"", esc(target))),
                    ],
                );
                en.cat = "fault";
                entries.push(en);
            }
            TraceEvent::FaultCleared { kind, target, at } => {
                let mut en = instant(
                    &mut lanes,
                    CONTROL_PID,
                    "faults",
                    "fault-cleared",
                    us(*at),
                    vec![
                        ("kind", format!("\"{}\"", esc(kind))),
                        ("target", format!("\"{}\"", esc(target))),
                    ],
                );
                en.cat = "fault";
                entries.push(en);
            }
            TraceEvent::TransferAborted {
                server,
                lane,
                bytes,
                partial,
                at,
            } => {
                servers.insert(*server, ());
                let mut en = instant(
                    &mut lanes,
                    server + 1,
                    lane,
                    "transfer-aborted",
                    us(*at),
                    vec![
                        ("bytes", bytes.to_string()),
                        ("partial", partial.to_string()),
                    ],
                );
                en.cat = "transfer";
                entries.push(en);
            }
            TraceEvent::TransferRetried {
                consumer,
                attempt,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    consumer,
                    "transfer-retried",
                    us(*at),
                    vec![("attempt", attempt.to_string())],
                ));
            }
            TraceEvent::FailoverEngaged {
                consumer,
                from,
                to,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    consumer,
                    "failover-engaged",
                    us(*at),
                    vec![
                        ("from", format!("\"{}\"", esc(from))),
                        ("to", format!("\"{}\"", esc(to))),
                        ("bytes", bytes.to_string()),
                    ],
                ));
            }
            TraceEvent::LeaseExpired {
                producer,
                lease,
                stranded,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    producer,
                    "lease-expired",
                    us(*at),
                    vec![
                        ("lease", lease.to_string()),
                        ("stranded", stranded.to_string()),
                    ],
                ));
            }
            TraceEvent::LeaseForceRevoked {
                producer,
                lease,
                stranded,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    producer,
                    "lease-force-revoked",
                    us(*at),
                    vec![
                        ("lease", lease.to_string()),
                        ("stranded", stranded.to_string()),
                    ],
                ));
            }
            TraceEvent::DegradedMode {
                consumer,
                state,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    consumer,
                    "degraded-mode",
                    us(*at),
                    vec![("state", format!("\"{}\"", esc(state)))],
                ));
            }
            TraceEvent::GatewayEnqueued {
                gateway,
                tenant,
                request,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "gateway-enqueued",
                    us(*at),
                    vec![
                        ("tenant", tenant.to_string()),
                        ("request", request.to_string()),
                    ],
                ));
            }
            TraceEvent::RequestScheduled {
                gateway,
                policy,
                request,
                queue_depth,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "scheduled",
                    us(*at),
                    vec![
                        ("policy", format!("\"{}\"", esc(policy))),
                        ("request", request.to_string()),
                        ("queue_depth", queue_depth.to_string()),
                    ],
                ));
            }
            TraceEvent::FirstTokenEmitted {
                gateway,
                request,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "first-token",
                    us(*at),
                    vec![("request", request.to_string())],
                ));
            }
            TraceEvent::GatewayCompleted {
                gateway,
                request,
                output_tokens,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "gateway-completed",
                    us(*at),
                    vec![
                        ("request", request.to_string()),
                        ("output_tokens", output_tokens.to_string()),
                    ],
                ));
            }
            TraceEvent::RequestShed {
                gateway,
                tenant,
                request,
                reason,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "request-shed",
                    us(*at),
                    vec![
                        ("tenant", tenant.to_string()),
                        ("request", request.to_string()),
                        ("reason", format!("\"{}\"", esc(reason))),
                    ],
                ));
            }
            TraceEvent::RequestTimedOut {
                gateway,
                request,
                deadline,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "request-timed-out",
                    us(*at),
                    vec![
                        ("request", request.to_string()),
                        ("deadline", format!("\"{}\"", esc(deadline))),
                    ],
                ));
            }
            TraceEvent::RequestCrashAborted {
                gateway,
                request,
                generated,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "request-crash-aborted",
                    us(*at),
                    vec![
                        ("request", request.to_string()),
                        ("generated", generated.to_string()),
                    ],
                ));
            }
            TraceEvent::RequestRetried {
                gateway,
                request,
                attempt,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "request-retried",
                    us(*at),
                    vec![
                        ("request", request.to_string()),
                        ("attempt", attempt.to_string()),
                    ],
                ));
            }
            TraceEvent::RequestRestored {
                gateway,
                request,
                mode,
                bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "request-restored",
                    us(*at),
                    vec![
                        ("request", request.to_string()),
                        ("mode", format!("\"{}\"", esc(mode))),
                        ("bytes", bytes.to_string()),
                    ],
                ));
            }
            TraceEvent::GatewayBrownout {
                gateway,
                state,
                queue_depth,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    gateway,
                    "gateway-brownout",
                    us(*at),
                    vec![
                        ("state", format!("\"{}\"", esc(state))),
                        ("queue_depth", queue_depth.to_string()),
                    ],
                ));
            }
            TraceEvent::CoordinatorCrashed {
                epoch,
                lost_leases,
                lost_bytes,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    "coordinator",
                    "coordinator-crashed",
                    us(*at),
                    vec![
                        ("epoch", epoch.to_string()),
                        ("lost_leases", lost_leases.to_string()),
                        ("lost_bytes", lost_bytes.to_string()),
                    ],
                ));
            }
            TraceEvent::CoordinatorRecovered { epoch, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    "coordinator",
                    "coordinator-recovered",
                    us(*at),
                    vec![("epoch", epoch.to_string())],
                ));
            }
            TraceEvent::EpochBumped { from, to, at } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    "coordinator",
                    "epoch-bumped",
                    us(*at),
                    vec![("from", from.to_string()), ("to", to.to_string())],
                ));
            }
            TraceEvent::StaleEpochRejected {
                verb,
                held,
                current,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    "coordinator",
                    "stale-epoch-rejected",
                    us(*at),
                    vec![
                        ("verb", format!("\"{}\"", esc(verb))),
                        ("held", held.to_string()),
                        ("current", current.to_string()),
                    ],
                ));
            }
            TraceEvent::PartitionStarted { split, at } => {
                let mut en = instant(
                    &mut lanes,
                    CONTROL_PID,
                    "faults",
                    "partition-started",
                    us(*at),
                    vec![("split", split.to_string())],
                );
                en.cat = "fault";
                entries.push(en);
            }
            TraceEvent::PartitionHealed { split, at } => {
                let mut en = instant(
                    &mut lanes,
                    CONTROL_PID,
                    "faults",
                    "partition-healed",
                    us(*at),
                    vec![("split", split.to_string())],
                );
                en.cat = "fault";
                entries.push(en);
            }
            TraceEvent::LeaseReconciled {
                producer,
                lease,
                bytes,
                epoch,
                outcome,
                at,
            } => {
                entries.push(instant(
                    &mut lanes,
                    CONTROL_PID,
                    producer,
                    "lease-reconciled",
                    us(*at),
                    vec![
                        ("lease", lease.to_string()),
                        ("bytes", bytes.to_string()),
                        ("epoch", epoch.to_string()),
                        ("outcome", format!("\"{}\"", esc(outcome))),
                    ],
                ));
            }
            TraceEvent::AuditViolation {
                kind,
                scope,
                detail,
                at,
            } => {
                let mut en = instant(
                    &mut lanes,
                    CONTROL_PID,
                    "audit",
                    "audit-violation",
                    us(*at),
                    vec![
                        ("kind", format!("\"{}\"", esc(kind))),
                        ("scope", format!("\"{}\"", esc(scope))),
                        ("detail", format!("\"{}\"", esc(detail))),
                    ],
                );
                en.cat = "audit";
                entries.push(en);
            }
        }
    }

    // Monotone ts per tid: stable sort by (ts, pid, tid) keeps emission order
    // for ties while ordering every thread's timeline.
    entries.sort_by_key(|e| (e.ts, e.pid, e.tid));

    let mut out = String::with_capacity(entries.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, fragment: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&fragment);
    };

    // Process/thread naming metadata first.
    push(
        &mut out,
        metadata_entry("process_name", CONTROL_PID, None, "aqua"),
    );
    for server in servers.keys() {
        push(
            &mut out,
            metadata_entry("process_name", server + 1, None, &format!("server{server}")),
        );
    }
    for (pid, label, tid) in &lanes.order {
        push(
            &mut out,
            metadata_entry("thread_name", *pid, Some(*tid), label),
        );
    }

    for e in &entries {
        let mut frag = String::with_capacity(96);
        frag.push_str("{\"name\":\"");
        escape_into(&mut frag, &e.name);
        frag.push_str("\",\"cat\":\"");
        frag.push_str(e.cat);
        frag.push_str("\",\"ph\":\"");
        frag.push(e.ph);
        frag.push('"');
        if e.ph == 'i' {
            frag.push_str(",\"s\":\"t\"");
        }
        frag.push_str(&format!(
            ",\"ts\":{},\"pid\":{},\"tid\":{}",
            e.ts, e.pid, e.tid
        ));
        if let Some(dur) = e.dur {
            frag.push_str(&format!(",\"dur\":{dur}"));
        }
        frag.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                frag.push(',');
            }
            frag.push('"');
            frag.push_str(k);
            frag.push_str("\":");
            frag.push_str(v);
        }
        frag.push_str("}}");
        push(&mut out, frag);
    }
    out.push_str("]}");
    out
}

fn metadata_entry(name: &str, pid: u32, tid: Option<u32>, label: &str) -> String {
    let mut frag = String::with_capacity(64);
    frag.push_str("{\"name\":\"");
    frag.push_str(name);
    frag.push_str("\",\"ph\":\"M\",\"pid\":");
    frag.push_str(&pid.to_string());
    if let Some(tid) = tid {
        frag.push_str(",\"tid\":");
        frag.push_str(&tid.to_string());
    }
    frag.push_str(",\"args\":{\"name\":\"");
    escape_into(&mut frag, label);
    frag.push_str("\"}}");
    frag
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, JsonValue};
    use crate::time::SimTime;
    use std::collections::HashMap;

    fn sample_journal() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TransferEnqueued {
                server: 0,
                lane: "nvlink-egress:gpu0".into(),
                bytes: 100,
                chunks: 1,
                at: SimTime::from_millis(2),
            },
            TraceEvent::TransferCompleted {
                server: 0,
                lane: "nvlink-egress:gpu0".into(),
                bytes: 100,
                chunks: 1,
                start: SimTime::from_millis(2),
                end: SimTime::from_millis(4),
            },
            TraceEvent::SliceFinished {
                engine: "cfs".into(),
                slice: 1,
                active: 3,
                tokens: 12,
                start: SimTime::from_millis(1),
                end: SimTime::from_millis(5),
            },
            TraceEvent::LeaseGranted {
                producer: "s0/gpu1".into(),
                lease: 1,
                bytes: 1 << 30,
                at: SimTime::from_millis(3),
            },
            TraceEvent::Gauge {
                name: "cfs.outstanding".into(),
                value: 4.0,
                at: SimTime::from_millis(3),
            },
            TraceEvent::TransferCompleted {
                server: 0,
                lane: "nvlink-egress:gpu0".into(),
                bytes: 50,
                chunks: 1,
                start: SimTime::from_millis(4),
                end: SimTime::from_millis(5),
            },
        ]
    }

    #[test]
    fn output_is_well_formed_json_with_expected_phases() {
        let doc = chrome_trace(&sample_journal());
        let v = json::parse(&doc).expect("chrome trace parses");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"), "metadata events present");
        assert!(phases.contains(&"X"), "duration events present");
        assert!(phases.contains(&"i"), "instant events present");
        assert!(phases.contains(&"C"), "counter events present");
    }

    #[test]
    fn ts_is_monotone_within_every_tid() {
        let doc = chrome_trace(&sample_journal());
        let v = json::parse(&doc).unwrap();
        let mut last: HashMap<(u64, u64), u64> = HashMap::new();
        for e in v.get("traceEvents").unwrap().as_arr().unwrap() {
            if e.get("ph").unwrap().as_str() == Some("M") {
                continue;
            }
            let key = (
                e.get("pid").unwrap().as_u64().unwrap(),
                e.get("tid").unwrap().as_u64().unwrap(),
            );
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            if let Some(&prev) = last.get(&key) {
                assert!(prev <= ts, "ts regressed on {key:?}: {prev} > {ts}");
            }
            last.insert(key, ts);
        }
        assert!(!last.is_empty());
    }

    #[test]
    fn lanes_are_named_and_durations_are_microseconds() {
        let doc = chrome_trace(&sample_journal());
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let lane_named = events.iter().any(|e| {
            e.get("ph").unwrap().as_str() == Some("M")
                && e.get("args").unwrap().get("name").unwrap().as_str()
                    == Some("nvlink-egress:gpu0")
        });
        assert!(lane_named, "lane thread_name metadata missing");
        let xfer: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("transfer"))
            .collect();
        assert_eq!(xfer.len(), 2);
        // 2ms wire time -> 2000us duration.
        assert_eq!(xfer[0].get("dur").unwrap().as_u64(), Some(2000));
    }

    #[test]
    fn empty_journal_renders_a_valid_document() {
        let doc = chrome_trace(&[]);
        let v = json::parse(&doc).unwrap();
        assert!(matches!(v.get("traceEvents"), Some(JsonValue::Arr(_))));
    }
}
