//! # aqua-telemetry — structured tracing for the AQUA stack
//!
//! Every figure in the paper is a claim about *when* things happen: when a
//! transfer hits a link, when a lease is granted or reclaimed, when a CFS
//! slice runs. This crate gives the whole workspace one vocabulary for those
//! moments ([`TraceEvent`]), one injection point ([`Tracer`], carried as a
//! [`SharedTracer`] and defaulting to the zero-overhead [`NullTracer`]), and
//! two consumers:
//!
//! * [`JournalTracer`] — buffers events, serialises them as JSONL, and folds
//!   every canonical line into a rolling 64-bit FNV-1a **determinism
//!   digest**, so "same seed ⇒ same behaviour" is a single `u64` comparison.
//! * [`chrome::chrome_trace`] — renders a journal as Chrome/Perfetto
//!   trace-event JSON (`pid` = server, `tid` = link lane or engine, duration
//!   events for transfers/slices, counter tracks for gauges) for loading into
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The crate sits at the bottom of the workspace dependency graph and also
//! owns the [`time`] module ([`time::SimTime`] / [`time::SimDuration`]),
//! which `aqua-sim` re-exports; events are stamped with simulated time, not
//! wall-clock time.
//!
//! # Example
//!
//! ```
//! use aqua_telemetry::time::SimTime;
//! use aqua_telemetry::{trace, JournalTracer, SharedTracer, TraceEvent, Tracer};
//! use std::sync::Arc;
//!
//! let journal = Arc::new(JournalTracer::new());
//! let tracer: SharedTracer = journal.clone();
//! trace!(tracer, TraceEvent::LeaseGranted {
//!     producer: "s0/gpu1".into(),
//!     lease: 1,
//!     bytes: 1 << 30,
//!     at: SimTime::from_secs(3),
//! });
//! tracer.incr("coordinator.lease", 1);
//! assert_eq!(journal.len(), 1);
//! assert_eq!(journal.registry().counter("coordinator.lease"), 1);
//! let chrome = journal.to_chrome_trace();
//! assert!(chrome.contains("traceEvents"));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod registry;
pub mod time;
pub mod tracer;

pub use event::{Lane, TraceEvent};
pub use registry::Registry;
pub use tracer::{fnv1a, null_tracer, JournalTracer, NullTracer, SharedTracer, Tracer};
