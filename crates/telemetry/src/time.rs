//! Integer-nanosecond simulation time.
//!
//! All simulator state advances on a [`SimTime`] clock measured in whole
//! nanoseconds since the start of the experiment. Using integers (rather than
//! `f64` seconds) keeps event ordering total and deterministic, which the
//! reproduction relies on: every figure harness must print identical rows on
//! every run.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the simulation epoch.
///
/// # Example
///
/// ```
/// use aqua_telemetry::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use aqua_telemetry::time::SimDuration;
/// let d = SimDuration::from_secs_f64(0.25);
/// assert_eq!(d.as_millis(), 250);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to the epoch.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Whole nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Whole nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds in this span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if the span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating difference between two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor.
    pub const fn mul_u64(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// Scales the span by a floating-point factor (rounded; clamps at zero).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!((t - SimTime::from_secs(3)).as_millis(), 250);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn min_max_are_consistent() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimDuration::from_micros(15).to_string(), "15.00us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }
}
