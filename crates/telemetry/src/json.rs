//! Minimal JSON support: escaping for the emitters and a small
//! recursive-descent parser used to validate exporter output in tests.
//!
//! The workspace deliberately carries no `serde_json` dependency; the journal
//! and Chrome-trace writers emit JSON by hand (the encodings are tiny and
//! must be byte-stable for the determinism digest), and this parser exists so
//! the unit tests can still assert the output is well-formed without trusting
//! the emitters' own formatting.

use std::collections::BTreeMap;

/// Appends `s` to `out` with JSON string escaping applied.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(map)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("raw control char in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte by byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,{"b":"x"}],"c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "tab\t quote\" back\\ nl\n unicode ✓";
        let mut enc = String::from('"');
        escape_into(&mut enc, raw);
        enc.push('"');
        assert_eq!(parse(&enc).unwrap().as_str(), Some(raw));
    }
}
