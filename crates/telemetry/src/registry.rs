//! A tiny counter/gauge registry for cheap always-on statistics.
//!
//! The journal captures *when* things happened; the registry captures *how
//! much* with no per-event cost — bytes per link lane, preemption counts,
//! reclaim counts. Keys are plain strings; maps are `BTreeMap` so snapshots
//! iterate in a deterministic order.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Named monotonic counters and last-write-wins gauges.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to `counter`, creating it at zero on first touch.
    pub fn incr(&self, counter: &str, delta: u64) {
        let mut counters = self.counters.lock().unwrap();
        if let Some(v) = counters.get_mut(counter) {
            *v = v.saturating_add(delta);
        } else {
            counters.insert(counter.to_owned(), delta);
        }
    }

    /// Sets `gauge` to `value`.
    pub fn set_gauge(&self, gauge: &str, value: f64) {
        let mut gauges = self.gauges.lock().unwrap();
        if let Some(v) = gauges.get_mut(gauge) {
            *v = value;
        } else {
            gauges.insert(gauge.to_owned(), value);
        }
    }

    /// The current value of one counter (zero if never touched).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(counter)
            .copied()
            .unwrap_or(0)
    }

    /// The current value of one gauge, if ever set.
    pub fn gauge(&self, gauge: &str) -> Option<f64> {
        self.gauges.lock().unwrap().get(gauge).copied()
    }

    /// A sorted snapshot of every counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// A sorted snapshot of every gauge.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.incr("bytes", 10);
        r.incr("bytes", 5);
        assert_eq!(r.counter("bytes"), 15);
        assert_eq!(r.counter("missing"), 0);
        r.incr("bytes", u64::MAX);
        assert_eq!(r.counter("bytes"), u64::MAX);
    }

    #[test]
    fn gauges_keep_the_last_value_and_snapshots_sort() {
        let r = Registry::new();
        r.set_gauge("b.depth", 1.0);
        r.set_gauge("a.depth", 2.0);
        r.set_gauge("b.depth", 3.0);
        assert_eq!(r.gauge("b.depth"), Some(3.0));
        assert_eq!(r.gauge("missing"), None);
        let snap = r.gauges();
        assert_eq!(snap[0].0, "a.depth");
        assert_eq!(snap[1], ("b.depth".to_owned(), 3.0));
    }
}
