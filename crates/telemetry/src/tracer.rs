//! The [`Tracer`] trait and its two implementations.
//!
//! Instrumented code holds a [`SharedTracer`] (an `Arc<dyn Tracer>`) that
//! defaults to [`NullTracer`]. The [`trace!`](crate::trace) macro guards
//! event construction behind [`Tracer::enabled`], so with the null tracer no
//! event is ever built — no strings, no allocation, just one virtual call
//! returning `false`.
//!
//! [`JournalTracer`] buffers every event, folds its canonical JSON line into
//! a rolling 64-bit FNV-1a digest, and can serialise the journal as JSONL or
//! as a Chrome trace. The digest makes "did these two runs do exactly the
//! same thing?" a single `u64` comparison.

use crate::chrome::chrome_trace;
use crate::event::TraceEvent;
use crate::registry::Registry;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// A sink for structured trace events and always-on counters.
///
/// Implementations must be cheap when disabled: callers consult
/// [`Tracer::enabled`] (usually via the [`trace!`](crate::trace) macro)
/// before building an event.
pub trait Tracer: fmt::Debug + Send + Sync {
    /// Whether [`Tracer::emit`] does anything. Callers skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn emit(&self, event: TraceEvent);

    /// Adds `delta` to a named monotonic counter.
    fn incr(&self, counter: &str, delta: u64);

    /// Sets a named gauge to `value`.
    fn gauge(&self, gauge: &str, value: f64);
}

/// The shared handle instrumented code stores.
pub type SharedTracer = Arc<dyn Tracer>;

/// Emits an event through a tracer only if the tracer is enabled.
///
/// The event expression is not evaluated when tracing is off, which is what
/// makes the [`NullTracer`](crate::tracer::NullTracer) default genuinely
/// zero-overhead on hot paths.
///
/// # Example
///
/// ```
/// use aqua_telemetry::{trace, null_tracer, TraceEvent};
/// use aqua_telemetry::time::SimTime;
/// let tracer = null_tracer();
/// trace!(tracer, TraceEvent::ReclaimRequested {
///     producer: "s0/gpu1".into(),
///     at: SimTime::ZERO,
/// });
/// ```
#[macro_export]
macro_rules! trace {
    ($tracer:expr, $event:expr) => {
        if $tracer.enabled() {
            $tracer.emit($event);
        }
    };
}

/// The do-nothing default tracer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn emit(&self, _event: TraceEvent) {}

    #[inline]
    fn incr(&self, _counter: &str, _delta: u64) {}

    #[inline]
    fn gauge(&self, _gauge: &str, _value: f64) {}
}

/// A shared handle to the (stateless) null tracer.
pub fn null_tracer() -> SharedTracer {
    static NULL: OnceLock<SharedTracer> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(NullTracer)))
}

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a rolling 64-bit FNV-1a hash.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[derive(Debug)]
struct Journal {
    events: Vec<TraceEvent>,
    digest: u64,
    emitted: usize,
}

/// A tracer that buffers every event and maintains a determinism digest.
///
/// # Example
///
/// ```
/// use aqua_telemetry::{JournalTracer, Tracer, TraceEvent};
/// use aqua_telemetry::time::SimTime;
/// let journal = JournalTracer::new();
/// journal.emit(TraceEvent::Donated {
///     gpu: "s0/gpu1".into(),
///     bytes: 1 << 30,
///     at: SimTime::from_secs(2),
/// });
/// assert_eq!(journal.len(), 1);
/// assert_ne!(journal.digest(), JournalTracer::new().digest());
/// ```
#[derive(Debug)]
pub struct JournalTracer {
    inner: Mutex<Journal>,
    registry: Registry,
    keep_events: bool,
}

impl Default for JournalTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl JournalTracer {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty journal with `capacity` event slots pre-allocated,
    /// so long instrumented runs do not re-grow the buffer mid-simulation.
    pub fn with_capacity(capacity: usize) -> Self {
        JournalTracer {
            inner: Mutex::new(Journal {
                events: Vec::with_capacity(capacity),
                digest: FNV_OFFSET,
                emitted: 0,
            }),
            registry: Registry::new(),
            keep_events: true,
        }
    }

    /// Creates a journal that folds every event into the determinism digest
    /// but does not buffer the events themselves. Sweep workers use this to
    /// prove schedule-independence without holding millions of events per
    /// point; [`JournalTracer::events`] returns an empty vector.
    pub fn digest_only() -> Self {
        JournalTracer {
            inner: Mutex::new(Journal {
                events: Vec::new(),
                digest: FNV_OFFSET,
                emitted: 0,
            }),
            registry: Registry::new(),
            keep_events: false,
        }
    }

    /// Number of events emitted so far (buffered or digest-only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().emitted
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rolling FNV-1a digest over every canonical event line emitted so
    /// far. Equal digests mean byte-identical journals.
    pub fn digest(&self) -> u64 {
        self.inner.lock().unwrap().digest
    }

    /// A snapshot of the buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// The always-on counter/gauge registry backing [`Tracer::incr`] and
    /// [`Tracer::gauge`].
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Serialises the journal as JSON Lines (one canonical object per event).
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in &inner.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Renders the journal as a Chrome trace-event JSON document.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.inner.lock().unwrap().events)
    }

    /// Writes the JSONL journal to `path`.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }

    /// Writes the Chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_chrome_trace().as_bytes())
    }
}

impl Tracer for JournalTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, event: TraceEvent) {
        let line = event.to_json_line();
        let mut inner = self.inner.lock().unwrap();
        inner.digest = fnv1a(inner.digest, line.as_bytes());
        inner.digest = fnv1a(inner.digest, b"\n");
        inner.emitted += 1;
        if self.keep_events {
            inner.events.push(event);
        }
    }

    fn incr(&self, counter: &str, delta: u64) {
        self.registry.incr(counter, delta);
    }

    fn gauge(&self, gauge: &str, value: f64) {
        self.registry.set_gauge(gauge, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::cell::Cell;

    fn sample(at: u64) -> TraceEvent {
        TraceEvent::ReclaimRequested {
            producer: "s0/gpu1".into(),
            at: SimTime::from_nanos(at),
        }
    }

    #[test]
    fn digest_matches_recomputed_fnv_over_jsonl() {
        let j = JournalTracer::new();
        j.emit(sample(1));
        j.emit(sample(2));
        assert_eq!(j.digest(), fnv1a(FNV_OFFSET, j.to_jsonl().as_bytes()));
    }

    #[test]
    fn same_events_same_digest_different_events_differ() {
        let a = JournalTracer::new();
        let b = JournalTracer::new();
        a.emit(sample(1));
        b.emit(sample(1));
        assert_eq!(a.digest(), b.digest());
        b.emit(sample(2));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_only_matches_buffering_journal() {
        let full = JournalTracer::new();
        let lean = JournalTracer::digest_only();
        for at in 1..=5 {
            full.emit(sample(at));
            lean.emit(sample(at));
        }
        assert_eq!(full.digest(), lean.digest());
        assert_eq!(full.len(), lean.len());
        assert_eq!(full.events().len(), 5);
        assert!(lean.events().is_empty(), "digest-only buffers nothing");
        assert!(!lean.is_empty(), "but it still counts emissions");
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let a = JournalTracer::new();
        let b = JournalTracer::with_capacity(1024);
        a.emit(sample(7));
        b.emit(sample(7));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn event_order_changes_the_digest() {
        let a = JournalTracer::new();
        a.emit(sample(1));
        a.emit(sample(2));
        let b = JournalTracer::new();
        b.emit(sample(2));
        b.emit(sample(1));
        assert_ne!(a.digest(), b.digest());
    }

    /// A tracer that aborts the test if anything is ever emitted.
    #[derive(Debug)]
    struct PanicTracer;

    impl Tracer for PanicTracer {
        fn enabled(&self) -> bool {
            false
        }

        fn emit(&self, _event: TraceEvent) {
            panic!("disabled tracer received an event");
        }

        fn incr(&self, _counter: &str, _delta: u64) {}

        fn gauge(&self, _gauge: &str, _value: f64) {}
    }

    #[test]
    fn trace_macro_skips_event_construction_when_disabled() {
        // The event expression must not be evaluated — no allocation, no
        // side effects — when the tracer reports disabled. The Cell proves
        // the closure body never ran; PanicTracer proves emit was never hit.
        let built = Cell::new(false);
        let tracer = PanicTracer;
        crate::trace!(tracer, {
            built.set(true);
            sample(1)
        });
        assert!(!built.get(), "event was constructed despite tracing off");

        let null = null_tracer();
        assert!(!null.enabled());
        crate::trace!(null, {
            built.set(true);
            sample(1)
        });
        assert!(!built.get());
    }
}
