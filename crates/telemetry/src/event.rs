//! The typed trace-event vocabulary.
//!
//! Every observable action in the stack — a transfer hitting a link, a lease
//! changing hands, a scheduler slice finishing — is one [`TraceEvent`]
//! variant stamped with the [`SimTime`](crate::time::SimTime) at which it
//! happened. Events carry plain strings for entity names (lanes, GPUs,
//! engines) so the vocabulary does not depend on any upper crate's id types.
//!
//! The canonical encoding ([`TraceEvent::to_json_line`]) is a single JSON
//! object per event with a stable field order; the determinism digest in
//! [`crate::tracer::JournalTracer`] hashes exactly these bytes, so two runs
//! agree on the digest iff they emitted byte-identical journals.

use crate::json::escape_into;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An interned lane label (e.g. `nvlink-egress:gpu0`).
///
/// Transfer events fire once per port per transfer — millions of times in a
/// long run — so their lane field is a reference-counted string: producers
/// render the label once per port and clone the `Arc` per event, instead of
/// calling `to_string()` on the hot path. The canonical JSON encoding is the
/// plain string, so interning never changes a journal or its digest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(into = "String", from = "String")]
pub struct Lane(Arc<str>);

impl Lane {
    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Lane {
    fn from(s: &str) -> Self {
        Lane(Arc::from(s))
    }
}

impl From<String> for Lane {
    fn from(s: String) -> Self {
        Lane(Arc::from(s))
    }
}

impl From<Arc<str>> for Lane {
    fn from(s: Arc<str>) -> Self {
        Lane(s)
    }
}

impl From<Lane> for String {
    fn from(l: Lane) -> Self {
        l.0.as_ref().to_owned()
    }
}

impl std::ops::Deref for Lane {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Lane {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq<str> for Lane {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Lane {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

/// One structured event in a run's journal.
///
/// Variants group into four families mirroring the stack's layers: transfer
/// lifecycle (the simulator's transfer engine), memory/lease movement (HBM
/// allocators, donation, reclaim), control plane (coordinator verbs, informer
/// decisions) and scheduler actions (vLLM admission/preemption, CFS slices,
/// FlexGen window fetches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A transfer plan was queued on a link lane (per egress/ingress port).
    TransferEnqueued {
        /// Server the lane belongs to.
        server: u32,
        /// Lane label, e.g. `nvlink-egress:gpu0`.
        lane: Lane,
        /// Total payload bytes.
        bytes: u64,
        /// Chunk count (1 for a coalesced plan).
        chunks: u64,
        /// Enqueue time.
        at: SimTime,
    },
    /// A queued transfer reached the head of its lane and started moving.
    TransferStarted {
        /// Server the lane belongs to.
        server: u32,
        /// Lane label.
        lane: Lane,
        /// Total payload bytes.
        bytes: u64,
        /// Wire start time.
        at: SimTime,
    },
    /// A transfer finished draining through a lane.
    TransferCompleted {
        /// Server the lane belongs to.
        server: u32,
        /// Lane label.
        lane: Lane,
        /// Total payload bytes.
        bytes: u64,
        /// Chunk count (1 for a coalesced plan).
        chunks: u64,
        /// Wire start time.
        start: SimTime,
        /// Wire end time.
        end: SimTime,
    },
    /// An HBM region was allocated.
    MemAllocated {
        /// Owning GPU label.
        gpu: String,
        /// Region kind, e.g. `kv-cache`.
        kind: String,
        /// Region size.
        bytes: u64,
        /// Allocation time.
        at: SimTime,
    },
    /// An HBM region was freed.
    MemFreed {
        /// Owning GPU label.
        gpu: String,
        /// Region kind.
        kind: String,
        /// Region size.
        bytes: u64,
        /// Free time.
        at: SimTime,
    },
    /// A producer donated HBM and the coordinator granted a lease over it.
    LeaseGranted {
        /// Producer GPU label.
        producer: String,
        /// Coordinator lease id.
        lease: u64,
        /// Donated bytes.
        bytes: u64,
        /// Grant time.
        at: SimTime,
    },
    /// A consumer carved an allocation out of a lease (or fell back to DRAM).
    LeaseAllocated {
        /// Consumer GPU label.
        consumer: String,
        /// Allocation site, e.g. `peer:s0/gpu1` or `dram`.
        site: String,
        /// Allocated bytes.
        bytes: u64,
        /// Allocation time.
        at: SimTime,
    },
    /// A consumer returned bytes to a lease.
    LeaseFreed {
        /// Consumer GPU label.
        consumer: String,
        /// Coordinator lease id.
        lease: u64,
        /// Freed bytes.
        bytes: u64,
        /// Free time.
        at: SimTime,
    },
    /// Leased context was promoted from DRAM back onto a producer GPU.
    LeasePromoted {
        /// Consumer GPU label.
        consumer: String,
        /// Destination lease id.
        lease: u64,
        /// Promoted bytes.
        bytes: u64,
        /// Promotion start time.
        at: SimTime,
    },
    /// An engine donated free pool bytes to the coordinator.
    Donated {
        /// Donating GPU label.
        gpu: String,
        /// Donated bytes.
        bytes: u64,
        /// Donation time.
        at: SimTime,
    },
    /// A KV cache compacted live blocks to make a donation contiguous.
    Compacted {
        /// Compacting GPU label.
        gpu: String,
        /// Bytes moved by compaction.
        bytes: u64,
        /// Compaction time.
        at: SimTime,
    },
    /// A producer asked for its donated memory back.
    ReclaimRequested {
        /// Producer GPU label.
        producer: String,
        /// Request time.
        at: SimTime,
    },
    /// A consumer drained a lease and released it back to the producer.
    ReclaimReleased {
        /// Producer GPU label the bytes went back to.
        producer: String,
        /// Released lease id.
        lease: u64,
        /// Released bytes.
        bytes: u64,
        /// Release completion time.
        at: SimTime,
    },
    /// A producer engine re-absorbed reclaimed bytes into its pool.
    Reclaimed {
        /// Producer GPU label.
        gpu: String,
        /// Reclaimed bytes.
        bytes: u64,
        /// Re-absorption time.
        at: SimTime,
    },
    /// A coordinator verb was invoked (southbound REST surface).
    CoordinatorVerb {
        /// Verb name, e.g. `release`.
        verb: String,
        /// Free-form detail, e.g. the lease id.
        detail: String,
        /// Invocation time.
        at: SimTime,
    },
    /// An informer made a donate/reclaim/pause decision.
    InformerDecision {
        /// GPU the informer watches.
        gpu: String,
        /// Decision label, e.g. `donate` or `reclaim-start`.
        decision: String,
        /// Decision time.
        at: SimTime,
    },
    /// A scheduler admitted a request into the running batch.
    RequestAdmitted {
        /// Engine scope label.
        engine: String,
        /// Request id.
        request: u64,
        /// Requests still waiting after admission.
        waiting: u64,
        /// Admission time.
        at: SimTime,
    },
    /// A scheduler preempted a running request.
    RequestPreempted {
        /// Engine scope label.
        engine: String,
        /// Request id.
        request: u64,
        /// Preemption policy, `recompute` or `swap`.
        policy: String,
        /// Preemption time.
        at: SimTime,
    },
    /// A CFS token slice ran to completion.
    SliceFinished {
        /// Engine scope label.
        engine: String,
        /// Monotone slice index.
        slice: u64,
        /// Sequences active in the slice.
        active: u64,
        /// Tokens generated during the slice.
        tokens: u64,
        /// Slice start time.
        start: SimTime,
        /// Slice end time.
        end: SimTime,
    },
    /// FlexGen streamed a context window through HBM for a decode chunk.
    WindowFetched {
        /// Engine scope label.
        engine: String,
        /// Bytes fetched for the window.
        bytes: u64,
        /// Fetch start time.
        start: SimTime,
        /// Fetch end time.
        end: SimTime,
    },
    /// A sampled gauge (queue depth, free pool bytes, ...).
    Gauge {
        /// Gauge name.
        name: String,
        /// Sampled value.
        value: f64,
        /// Sample time.
        at: SimTime,
    },
    /// A fault window opened (link outage, GPU crash, congestion, ...).
    FaultInjected {
        /// Fault kind label, e.g. `link-down` or `gpu-crash`.
        kind: String,
        /// Affected entity, e.g. `nvlink-egress:gpu1` or `coordinator`.
        target: String,
        /// Window start time.
        at: SimTime,
    },
    /// A fault window closed and the entity recovered.
    FaultCleared {
        /// Fault kind label.
        kind: String,
        /// Affected entity.
        target: String,
        /// Window end time.
        at: SimTime,
    },
    /// An in-flight transfer was cut short by a link/GPU failure.
    TransferAborted {
        /// Server the lane belongs to.
        server: u32,
        /// Lane label.
        lane: Lane,
        /// Bytes the transfer intended to move.
        bytes: u64,
        /// Bytes that made it across before the cut.
        partial: u64,
        /// Abort time.
        at: SimTime,
    },
    /// The offloader retried a failed fabric transfer after backoff.
    TransferRetried {
        /// Consumer GPU label.
        consumer: String,
        /// 1-based retry attempt number.
        attempt: u64,
        /// Retry time.
        at: SimTime,
    },
    /// The offloader fell down its failover ladder (lease → sibling → DRAM).
    FailoverEngaged {
        /// Consumer GPU label.
        consumer: String,
        /// Failed placement, e.g. `peer:gpu1`.
        from: String,
        /// Replacement placement, e.g. `sibling` or `dram`.
        to: String,
        /// Bytes redirected.
        bytes: u64,
        /// Failover time.
        at: SimTime,
    },
    /// A lease's producer missed its heartbeat TTL and the lease was revoked.
    LeaseExpired {
        /// Producer GPU label.
        producer: String,
        /// Expired lease id.
        lease: u64,
        /// Consumer bytes stranded inside the lease.
        stranded: u64,
        /// Expiry time.
        at: SimTime,
    },
    /// A reclaim deadline passed and the coordinator force-revoked the lease.
    LeaseForceRevoked {
        /// Producer GPU label.
        producer: String,
        /// Revoked lease id.
        lease: u64,
        /// Consumer bytes stranded inside the lease.
        stranded: u64,
        /// Revocation time.
        at: SimTime,
    },
    /// A consumer entered or left degraded mode (new allocations pinned to
    /// DRAM while a fault is active).
    DegradedMode {
        /// Consumer GPU label.
        consumer: String,
        /// `enter` or `exit`.
        state: String,
        /// Transition time.
        at: SimTime,
    },
    /// A request entered a serving gateway's admission queue.
    GatewayEnqueued {
        /// Gateway scope label.
        gateway: String,
        /// Tenant the request belongs to.
        tenant: u64,
        /// Request id.
        request: u64,
        /// Enqueue time.
        at: SimTime,
    },
    /// A gateway scheduler picked a request for admission into the batch.
    RequestScheduled {
        /// Gateway scope label.
        gateway: String,
        /// Scheduler policy name, e.g. `sjf+bucket`.
        policy: String,
        /// Request id.
        request: u64,
        /// Requests still queued after this pick.
        queue_depth: u64,
        /// Scheduling time.
        at: SimTime,
    },
    /// A gateway delivered the first output token of a request.
    FirstTokenEmitted {
        /// Gateway scope label.
        gateway: String,
        /// Request id.
        request: u64,
        /// Delivery time.
        at: SimTime,
    },
    /// A gateway finished streaming a request's output.
    GatewayCompleted {
        /// Gateway scope label.
        gateway: String,
        /// Request id.
        request: u64,
        /// Output tokens delivered.
        output_tokens: u64,
        /// Completion time.
        at: SimTime,
    },
    /// A gateway refused a request at the door under overload protection.
    RequestShed {
        /// Gateway scope label.
        gateway: String,
        /// Tenant the request belongs to.
        tenant: u64,
        /// Request id.
        request: u64,
        /// Shed reason, e.g. `queue_depth`, `kv_cost` or `brownout`.
        reason: String,
        /// Shed time.
        at: SimTime,
    },
    /// A gateway cancelled a request that blew a per-tenant deadline.
    RequestTimedOut {
        /// Gateway scope label.
        gateway: String,
        /// Request id.
        request: u64,
        /// Deadline that was missed, `ttft` or `total`.
        deadline: String,
        /// Cancellation time.
        at: SimTime,
    },
    /// A GPU crash destroyed a running request's HBM KV state.
    RequestCrashAborted {
        /// Gateway scope label.
        gateway: String,
        /// Request id.
        request: u64,
        /// Output tokens already delivered before the crash.
        generated: u64,
        /// Recovery time (the gateway's first step after the window).
        at: SimTime,
    },
    /// A crash-aborted request was re-queued under its retry budget.
    RequestRetried {
        /// Gateway scope label.
        gateway: String,
        /// Request id.
        request: u64,
        /// 1-based retry attempt number.
        attempt: u64,
        /// Re-queue time (backoff delays eligibility, not the event).
        at: SimTime,
    },
    /// A crashed request's state came back: `swap` when KV survived in the
    /// offload store, `recompute` when the prefill had to be replayed.
    RequestRestored {
        /// Gateway scope label.
        gateway: String,
        /// Request id.
        request: u64,
        /// Restore mode, `swap` or `recompute`.
        mode: String,
        /// KV bytes restored (the sequence's context at restore time).
        bytes: u64,
        /// Restore time.
        at: SimTime,
    },
    /// A gateway entered or left brownout (tightened batch-tenant caps).
    GatewayBrownout {
        /// Gateway scope label.
        gateway: String,
        /// `enter` or `exit`.
        state: String,
        /// Admission queue depth at the transition.
        queue_depth: u64,
        /// Transition time.
        at: SimTime,
    },
    /// The coordinator process crashed: the in-memory lease book was lost
    /// and the epoch fence advanced.
    CoordinatorCrashed {
        /// Epoch in force after the crash bump.
        epoch: u64,
        /// Leases wiped from the book.
        lost_leases: u64,
        /// Donated bytes wiped with them.
        lost_bytes: u64,
        /// Crash time.
        at: SimTime,
    },
    /// The restarted coordinator finished its rebuild and accepts verbs
    /// again (resync reports repopulate the book afterwards).
    CoordinatorRecovered {
        /// Epoch the rebuilt book serves.
        epoch: u64,
        /// Recovery time.
        at: SimTime,
    },
    /// The coordinator's epoch fence advanced.
    EpochBumped {
        /// Epoch before the bump.
        from: u64,
        /// Epoch after the bump.
        to: u64,
        /// Bump time.
        at: SimTime,
    },
    /// A control verb carrying a stale epoch was fenced off instead of
    /// mutating the rebuilt lease book.
    StaleEpochRejected {
        /// The rejected verb (`free`, `heartbeat`, `resync`, …).
        verb: String,
        /// Epoch the caller held.
        held: u64,
        /// Epoch in force.
        current: u64,
        /// Rejection time.
        at: SimTime,
    },
    /// A control-plane partition started: GPUs at or past `split` lost
    /// the coordinator.
    PartitionStarted {
        /// First GPU index on the far side.
        split: u64,
        /// Partition start.
        at: SimTime,
    },
    /// A control-plane partition healed.
    PartitionHealed {
        /// First GPU index that was on the far side.
        split: u64,
        /// Heal time.
        at: SimTime,
    },
    /// A pre-crash lease was settled in the first post-recovery epoch:
    /// re-homed by a resync report, locally revoked, or released.
    LeaseReconciled {
        /// The party whose lease was settled.
        producer: String,
        /// The settled lease id (pre-crash id for local outcomes, the
        /// fresh id for re-homed donations).
        lease: u64,
        /// Bytes settled.
        bytes: u64,
        /// Epoch the settlement landed in.
        epoch: u64,
        /// Outcome: `rehomed`, `local-revoke`, or `released`.
        outcome: String,
        /// Settlement time.
        at: SimTime,
    },
    /// A runtime invariant audit failed (aqua-audit). Only emitted when a
    /// check actually trips, so clean audited runs journal the exact same
    /// event stream — and digest — as unaudited ones.
    AuditViolation {
        /// Violation kind (e.g. `double_free`, `port_overlap`).
        kind: String,
        /// Component that tripped the check (`coordinator`, `transfer`, …).
        scope: String,
        /// Human-readable description of the broken invariant.
        detail: String,
        /// When the illegal transition was observed.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The variant name used as the `event` field of the canonical encoding.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TransferEnqueued { .. } => "transfer_enqueued",
            TraceEvent::TransferStarted { .. } => "transfer_started",
            TraceEvent::TransferCompleted { .. } => "transfer_completed",
            TraceEvent::MemAllocated { .. } => "mem_allocated",
            TraceEvent::MemFreed { .. } => "mem_freed",
            TraceEvent::LeaseGranted { .. } => "lease_granted",
            TraceEvent::LeaseAllocated { .. } => "lease_allocated",
            TraceEvent::LeaseFreed { .. } => "lease_freed",
            TraceEvent::LeasePromoted { .. } => "lease_promoted",
            TraceEvent::Donated { .. } => "donated",
            TraceEvent::Compacted { .. } => "compacted",
            TraceEvent::ReclaimRequested { .. } => "reclaim_requested",
            TraceEvent::ReclaimReleased { .. } => "reclaim_released",
            TraceEvent::Reclaimed { .. } => "reclaimed",
            TraceEvent::CoordinatorVerb { .. } => "coordinator_verb",
            TraceEvent::InformerDecision { .. } => "informer_decision",
            TraceEvent::RequestAdmitted { .. } => "request_admitted",
            TraceEvent::RequestPreempted { .. } => "request_preempted",
            TraceEvent::SliceFinished { .. } => "slice_finished",
            TraceEvent::WindowFetched { .. } => "window_fetched",
            TraceEvent::Gauge { .. } => "gauge",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::FaultCleared { .. } => "fault_cleared",
            TraceEvent::TransferAborted { .. } => "transfer_aborted",
            TraceEvent::TransferRetried { .. } => "transfer_retried",
            TraceEvent::FailoverEngaged { .. } => "failover_engaged",
            TraceEvent::LeaseExpired { .. } => "lease_expired",
            TraceEvent::LeaseForceRevoked { .. } => "lease_force_revoked",
            TraceEvent::DegradedMode { .. } => "degraded_mode",
            TraceEvent::GatewayEnqueued { .. } => "gateway_enqueued",
            TraceEvent::RequestScheduled { .. } => "request_scheduled",
            TraceEvent::FirstTokenEmitted { .. } => "first_token_emitted",
            TraceEvent::GatewayCompleted { .. } => "gateway_completed",
            TraceEvent::RequestShed { .. } => "request_shed",
            TraceEvent::RequestTimedOut { .. } => "request_timed_out",
            TraceEvent::RequestCrashAborted { .. } => "request_crash_aborted",
            TraceEvent::RequestRetried { .. } => "request_retried",
            TraceEvent::RequestRestored { .. } => "request_restored",
            TraceEvent::GatewayBrownout { .. } => "gateway_brownout",
            TraceEvent::CoordinatorCrashed { .. } => "coordinator_crashed",
            TraceEvent::CoordinatorRecovered { .. } => "coordinator_recovered",
            TraceEvent::EpochBumped { .. } => "epoch_bumped",
            TraceEvent::StaleEpochRejected { .. } => "stale_epoch_rejected",
            TraceEvent::PartitionStarted { .. } => "partition_started",
            TraceEvent::PartitionHealed { .. } => "partition_healed",
            TraceEvent::LeaseReconciled { .. } => "lease_reconciled",
            TraceEvent::AuditViolation { .. } => "audit_violation",
        }
    }

    /// The timestamp that orders this event in a journal (start time for
    /// duration-shaped events).
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::TransferEnqueued { at, .. }
            | TraceEvent::TransferStarted { at, .. }
            | TraceEvent::MemAllocated { at, .. }
            | TraceEvent::MemFreed { at, .. }
            | TraceEvent::LeaseGranted { at, .. }
            | TraceEvent::LeaseAllocated { at, .. }
            | TraceEvent::LeaseFreed { at, .. }
            | TraceEvent::LeasePromoted { at, .. }
            | TraceEvent::Donated { at, .. }
            | TraceEvent::Compacted { at, .. }
            | TraceEvent::ReclaimRequested { at, .. }
            | TraceEvent::ReclaimReleased { at, .. }
            | TraceEvent::Reclaimed { at, .. }
            | TraceEvent::CoordinatorVerb { at, .. }
            | TraceEvent::InformerDecision { at, .. }
            | TraceEvent::RequestAdmitted { at, .. }
            | TraceEvent::RequestPreempted { at, .. }
            | TraceEvent::Gauge { at, .. }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::FaultCleared { at, .. }
            | TraceEvent::TransferAborted { at, .. }
            | TraceEvent::TransferRetried { at, .. }
            | TraceEvent::FailoverEngaged { at, .. }
            | TraceEvent::LeaseExpired { at, .. }
            | TraceEvent::LeaseForceRevoked { at, .. }
            | TraceEvent::DegradedMode { at, .. }
            | TraceEvent::GatewayEnqueued { at, .. }
            | TraceEvent::RequestScheduled { at, .. }
            | TraceEvent::FirstTokenEmitted { at, .. }
            | TraceEvent::GatewayCompleted { at, .. }
            | TraceEvent::RequestShed { at, .. }
            | TraceEvent::RequestTimedOut { at, .. }
            | TraceEvent::RequestCrashAborted { at, .. }
            | TraceEvent::RequestRetried { at, .. }
            | TraceEvent::RequestRestored { at, .. }
            | TraceEvent::GatewayBrownout { at, .. }
            | TraceEvent::CoordinatorCrashed { at, .. }
            | TraceEvent::CoordinatorRecovered { at, .. }
            | TraceEvent::EpochBumped { at, .. }
            | TraceEvent::StaleEpochRejected { at, .. }
            | TraceEvent::PartitionStarted { at, .. }
            | TraceEvent::PartitionHealed { at, .. }
            | TraceEvent::LeaseReconciled { at, .. }
            | TraceEvent::AuditViolation { at, .. } => *at,
            TraceEvent::TransferCompleted { start, .. }
            | TraceEvent::SliceFinished { start, .. }
            | TraceEvent::WindowFetched { start, .. } => *start,
        }
    }

    /// Serialises the event as one canonical JSON line (no trailing newline).
    ///
    /// Field order is fixed per variant and times are integer nanoseconds, so
    /// the output is byte-stable across runs and platforms — the property the
    /// determinism digest relies on.
    pub fn to_json_line(&self) -> String {
        let mut w = LineWriter::new(self.name());
        match self {
            TraceEvent::TransferEnqueued {
                server,
                lane,
                bytes,
                chunks,
                at,
            } => {
                w.num("server", u64::from(*server));
                w.str("lane", lane);
                w.num("bytes", *bytes);
                w.num("chunks", *chunks);
                w.time("at", *at);
            }
            TraceEvent::TransferStarted {
                server,
                lane,
                bytes,
                at,
            } => {
                w.num("server", u64::from(*server));
                w.str("lane", lane);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::TransferCompleted {
                server,
                lane,
                bytes,
                chunks,
                start,
                end,
            } => {
                w.num("server", u64::from(*server));
                w.str("lane", lane);
                w.num("bytes", *bytes);
                w.num("chunks", *chunks);
                w.time("start", *start);
                w.time("end", *end);
            }
            TraceEvent::MemAllocated {
                gpu,
                kind,
                bytes,
                at,
            }
            | TraceEvent::MemFreed {
                gpu,
                kind,
                bytes,
                at,
            } => {
                w.str("gpu", gpu);
                w.str("kind", kind);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::LeaseGranted {
                producer,
                lease,
                bytes,
                at,
            } => {
                w.str("producer", producer);
                w.num("lease", *lease);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::LeaseAllocated {
                consumer,
                site,
                bytes,
                at,
            } => {
                w.str("consumer", consumer);
                w.str("site", site);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::LeaseFreed {
                consumer,
                lease,
                bytes,
                at,
            }
            | TraceEvent::LeasePromoted {
                consumer,
                lease,
                bytes,
                at,
            } => {
                w.str("consumer", consumer);
                w.num("lease", *lease);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::Donated { gpu, bytes, at }
            | TraceEvent::Compacted { gpu, bytes, at }
            | TraceEvent::Reclaimed { gpu, bytes, at } => {
                w.str("gpu", gpu);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::ReclaimRequested { producer, at } => {
                w.str("producer", producer);
                w.time("at", *at);
            }
            TraceEvent::ReclaimReleased {
                producer,
                lease,
                bytes,
                at,
            } => {
                w.str("producer", producer);
                w.num("lease", *lease);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::CoordinatorVerb { verb, detail, at } => {
                w.str("verb", verb);
                w.str("detail", detail);
                w.time("at", *at);
            }
            TraceEvent::InformerDecision { gpu, decision, at } => {
                w.str("gpu", gpu);
                w.str("decision", decision);
                w.time("at", *at);
            }
            TraceEvent::RequestAdmitted {
                engine,
                request,
                waiting,
                at,
            } => {
                w.str("engine", engine);
                w.num("request", *request);
                w.num("waiting", *waiting);
                w.time("at", *at);
            }
            TraceEvent::RequestPreempted {
                engine,
                request,
                policy,
                at,
            } => {
                w.str("engine", engine);
                w.num("request", *request);
                w.str("policy", policy);
                w.time("at", *at);
            }
            TraceEvent::SliceFinished {
                engine,
                slice,
                active,
                tokens,
                start,
                end,
            } => {
                w.str("engine", engine);
                w.num("slice", *slice);
                w.num("active", *active);
                w.num("tokens", *tokens);
                w.time("start", *start);
                w.time("end", *end);
            }
            TraceEvent::WindowFetched {
                engine,
                bytes,
                start,
                end,
            } => {
                w.str("engine", engine);
                w.num("bytes", *bytes);
                w.time("start", *start);
                w.time("end", *end);
            }
            TraceEvent::Gauge { name, value, at } => {
                w.str("name", name);
                w.f64("value", *value);
                w.time("at", *at);
            }
            TraceEvent::FaultInjected { kind, target, at }
            | TraceEvent::FaultCleared { kind, target, at } => {
                w.str("kind", kind);
                w.str("target", target);
                w.time("at", *at);
            }
            TraceEvent::TransferAborted {
                server,
                lane,
                bytes,
                partial,
                at,
            } => {
                w.num("server", u64::from(*server));
                w.str("lane", lane);
                w.num("bytes", *bytes);
                w.num("partial", *partial);
                w.time("at", *at);
            }
            TraceEvent::TransferRetried {
                consumer,
                attempt,
                at,
            } => {
                w.str("consumer", consumer);
                w.num("attempt", *attempt);
                w.time("at", *at);
            }
            TraceEvent::FailoverEngaged {
                consumer,
                from,
                to,
                bytes,
                at,
            } => {
                w.str("consumer", consumer);
                w.str("from", from);
                w.str("to", to);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::LeaseExpired {
                producer,
                lease,
                stranded,
                at,
            }
            | TraceEvent::LeaseForceRevoked {
                producer,
                lease,
                stranded,
                at,
            } => {
                w.str("producer", producer);
                w.num("lease", *lease);
                w.num("stranded", *stranded);
                w.time("at", *at);
            }
            TraceEvent::DegradedMode {
                consumer,
                state,
                at,
            } => {
                w.str("consumer", consumer);
                w.str("state", state);
                w.time("at", *at);
            }
            TraceEvent::GatewayEnqueued {
                gateway,
                tenant,
                request,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("tenant", *tenant);
                w.num("request", *request);
                w.time("at", *at);
            }
            TraceEvent::RequestScheduled {
                gateway,
                policy,
                request,
                queue_depth,
                at,
            } => {
                w.str("gateway", gateway);
                w.str("policy", policy);
                w.num("request", *request);
                w.num("queue_depth", *queue_depth);
                w.time("at", *at);
            }
            TraceEvent::FirstTokenEmitted {
                gateway,
                request,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("request", *request);
                w.time("at", *at);
            }
            TraceEvent::GatewayCompleted {
                gateway,
                request,
                output_tokens,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("request", *request);
                w.num("output_tokens", *output_tokens);
                w.time("at", *at);
            }
            TraceEvent::RequestShed {
                gateway,
                tenant,
                request,
                reason,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("tenant", *tenant);
                w.num("request", *request);
                w.str("reason", reason);
                w.time("at", *at);
            }
            TraceEvent::RequestTimedOut {
                gateway,
                request,
                deadline,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("request", *request);
                w.str("deadline", deadline);
                w.time("at", *at);
            }
            TraceEvent::RequestCrashAborted {
                gateway,
                request,
                generated,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("request", *request);
                w.num("generated", *generated);
                w.time("at", *at);
            }
            TraceEvent::RequestRetried {
                gateway,
                request,
                attempt,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("request", *request);
                w.num("attempt", *attempt);
                w.time("at", *at);
            }
            TraceEvent::RequestRestored {
                gateway,
                request,
                mode,
                bytes,
                at,
            } => {
                w.str("gateway", gateway);
                w.num("request", *request);
                w.str("mode", mode);
                w.num("bytes", *bytes);
                w.time("at", *at);
            }
            TraceEvent::GatewayBrownout {
                gateway,
                state,
                queue_depth,
                at,
            } => {
                w.str("gateway", gateway);
                w.str("state", state);
                w.num("queue_depth", *queue_depth);
                w.time("at", *at);
            }
            TraceEvent::CoordinatorCrashed {
                epoch,
                lost_leases,
                lost_bytes,
                at,
            } => {
                w.num("epoch", *epoch);
                w.num("lost_leases", *lost_leases);
                w.num("lost_bytes", *lost_bytes);
                w.time("at", *at);
            }
            TraceEvent::CoordinatorRecovered { epoch, at } => {
                w.num("epoch", *epoch);
                w.time("at", *at);
            }
            TraceEvent::EpochBumped { from, to, at } => {
                w.num("from", *from);
                w.num("to", *to);
                w.time("at", *at);
            }
            TraceEvent::StaleEpochRejected {
                verb,
                held,
                current,
                at,
            } => {
                w.str("verb", verb);
                w.num("held", *held);
                w.num("current", *current);
                w.time("at", *at);
            }
            TraceEvent::PartitionStarted { split, at } => {
                w.num("split", *split);
                w.time("at", *at);
            }
            TraceEvent::PartitionHealed { split, at } => {
                w.num("split", *split);
                w.time("at", *at);
            }
            TraceEvent::LeaseReconciled {
                producer,
                lease,
                bytes,
                epoch,
                outcome,
                at,
            } => {
                w.str("producer", producer);
                w.num("lease", *lease);
                w.num("bytes", *bytes);
                w.num("epoch", *epoch);
                w.str("outcome", outcome);
                w.time("at", *at);
            }
            TraceEvent::AuditViolation {
                kind,
                scope,
                detail,
                at,
            } => {
                w.str("kind", kind);
                w.str("scope", scope);
                w.str("detail", detail);
                w.time("at", *at);
            }
        }
        w.finish()
    }
}

/// Formats an `f64` as a JSON-safe token (non-finite values map to `0`).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_owned()
    }
}

/// Tiny builder for one canonical JSON object line.
struct LineWriter {
    out: String,
}

impl LineWriter {
    fn new(event: &str) -> Self {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":\"");
        out.push_str(event);
        out.push('"');
        LineWriter { out }
    }

    fn key(&mut self, key: &str) {
        self.out.push_str(",\"");
        self.out.push_str(key);
        self.out.push_str("\":");
    }

    fn num(&mut self, key: &str, v: u64) {
        self.key(key);
        self.out.push_str(&v.to_string());
    }

    fn f64(&mut self, key: &str, v: f64) {
        self.key(key);
        self.out.push_str(&fmt_f64(v));
    }

    fn time(&mut self, key: &str, t: SimTime) {
        self.num(key, t.as_nanos());
    }

    fn str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn canonical_lines_are_valid_json() {
        let events = [
            TraceEvent::TransferCompleted {
                server: 0,
                lane: "nvlink-egress:gpu0".into(),
                bytes: 1 << 20,
                chunks: 2,
                start: SimTime::from_millis(1),
                end: SimTime::from_millis(3),
            },
            TraceEvent::LeaseGranted {
                producer: "s0/gpu1".into(),
                lease: 7,
                bytes: 42,
                at: SimTime::from_secs(1),
            },
            TraceEvent::Gauge {
                name: "cfs.outstanding".into(),
                value: 3.5,
                at: SimTime::ZERO,
            },
            TraceEvent::CoordinatorCrashed {
                epoch: 2,
                lost_leases: 3,
                lost_bytes: 1 << 30,
                at: SimTime::from_secs(12),
            },
            TraceEvent::EpochBumped {
                from: 1,
                to: 2,
                at: SimTime::from_secs(12),
            },
            TraceEvent::StaleEpochRejected {
                verb: "free".into(),
                held: 1,
                current: 2,
                at: SimTime::from_secs(13),
            },
            TraceEvent::LeaseReconciled {
                producer: "s0/gpu1".into(),
                lease: 9,
                bytes: 1 << 29,
                epoch: 2,
                outcome: "rehomed".into(),
                at: SimTime::from_secs(14),
            },
        ];
        for e in &events {
            let line = e.to_json_line();
            let v = json::parse(&line).expect("canonical line parses");
            assert_eq!(
                v.get("event").and_then(|v| v.as_str()),
                Some(e.name()),
                "line: {line}"
            );
        }
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::CoordinatorVerb {
            verb: "lease".into(),
            detail: "quote \" slash \\ newline \n".into(),
            at: SimTime::ZERO,
        };
        let line = e.to_json_line();
        let v = json::parse(&line).expect("escaped line parses");
        assert_eq!(
            v.get("detail").and_then(|v| v.as_str()),
            Some("quote \" slash \\ newline \n")
        );
    }

    #[test]
    fn non_finite_gauges_stay_valid_json() {
        let e = TraceEvent::Gauge {
            name: "bad".into(),
            value: f64::NAN,
            at: SimTime::ZERO,
        };
        assert!(json::parse(&e.to_json_line()).is_ok());
    }
}
