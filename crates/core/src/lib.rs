//! # aqua-core — AQUA-LIB, the paper's primary contribution
//!
//! AQUA is a transparent and elastic GPU memory-management framework for
//! responsive LLM inference. Instead of offloading dynamic inference context
//! (KV caches, LoRA adapters) to host DRAM over PCIe, AQUA offloads it to
//! the HBM of a neighbouring GPU over the much faster inter-GPU fabric
//! (NVLink/NVSwitch), falling back to DRAM when no neighbour has memory to
//! spare. This crate implements the three mechanisms of §3 and §B:
//!
//! * [`coordinator`] — the central coordinator: a thread-safe store that
//!   tracks memory **leases** from producer GPUs and **allocations** by
//!   consumer GPUs, and brokers the reclaim protocol. Its API mirrors the
//!   paper's REST endpoints (`/lease`, `/allocate`, `/free`, `/respond`,
//!   `/reclaim_request`, `/reclaim_status`); [`messages`] provides the
//!   serialisable request/response envelope.
//! * [`tensor`] — **AQUA TENSORS**: migratable, location-transparent tensor
//!   handles with the paper's pointer-invalidation semantics
//!   (`to_responsive_tensor` / `to_torch_tensor` / `aqua.respond()`).
//! * [`offloader`] — [`offloader::AquaOffloader`], an
//!   [`aqua_engines::offload::Offloader`] that gathers scattered context
//!   into a staging buffer (the custom CUDA gather/scatter kernels of §5)
//!   and moves it as one coalesced copy over the fabric, with transparent
//!   DRAM fallback and elastic release when producers reclaim.
//! * [`informer`] — the producer-side control loops of §B.1:
//!   [`informer::LlmInformer`] (donate when the queue is quiet, reclaim on
//!   bursts) and [`informer::BatchInformer`] (donate after each batch).
//!
//! # Example: offloading over NVLink beats DRAM
//!
//! ```
//! use aqua_core::prelude::*;
//! use aqua_engines::offload::{DramOffloader, Offloader};
//! use aqua_sim::prelude::*;
//! use std::{cell::RefCell, rc::Rc};
//! use std::sync::Arc;
//!
//! let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
//! let xfer = Rc::new(RefCell::new(TransferEngine::new()));
//! let coord = Arc::new(Coordinator::new());
//!
//! // GPU 1 leases 20 GiB to AQUA.
//! coord.lease(GpuRef::single(GpuId(1)), 20 << 30);
//!
//! // GPU 0's consumer offloads 2 GiB of KV cache.
//! let mut aqua = AquaOffloader::new(
//!     GpuRef::single(GpuId(0)), coord, server.clone(), xfer.clone());
//! let t_aqua = aqua.swap_out(2 << 30, 1024, SimTime::ZERO);
//!
//! let mut dram = DramOffloader::pinned(&server, GpuId(0), xfer);
//! let t_dram = dram.swap_out(2 << 30, 1024, SimTime::ZERO);
//! assert!(t_aqua.as_secs_f64() * 5.0 < t_dram.as_secs_f64());
//! ```

pub mod aqualib;
pub mod coordinator;
pub mod error;
pub mod informer;
pub mod messages;
pub mod offloader;
pub mod service;
pub mod tensor;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::aqualib::AquaLib;
    pub use crate::coordinator::{
        AllocationSite, Coordinator, FailureConfig, GpuRef, LeaseId, LeaseState, ReclaimStatus,
    };
    pub use crate::error::AquaError;
    pub use crate::informer::{BatchInformer, LlmInformer, LlmInformerConfig};
    pub use crate::offloader::{AquaOffloader, FailoverPolicy};
    pub use crate::service::{CoordinatorClient, CoordinatorService};
    pub use crate::tensor::{AquaTensor, TensorLocation, TensorTable};
}

pub use prelude::*;
