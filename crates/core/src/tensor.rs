//! AQUA TENSORS: migratable, location-transparent tensors (§3, §B).
//!
//! The paper wraps PyTorch tensors so their physical location (this GPU, a
//! peer GPU, or host DRAM) can change between inference iterations without
//! the model noticing: `to_responsive_tensor(torch_tensor)` wraps,
//! `to_torch_tensor()` resolves the *current* pointer, and `aqua.respond()`
//! is the iteration boundary at which migrations happen. "If a tensor is
//! migrated while a pointer to the previous location of the tensor is in use
//! … it can lead to issues similar to segmentation faults" — we reproduce
//! that contract with a generation counter: a [`TensorRef`] taken before a
//! migration is *stale* afterwards, and dereferencing it is an error instead
//! of a segfault.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of one AQUA tensor within a [`TensorTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TensorId(pub u64);

/// Physical location of an AQUA tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorLocation {
    /// Resident in the owning GPU's HBM (paged in for compute).
    LocalHbm,
    /// Offloaded to a peer GPU's HBM over the fabric.
    PeerGpu {
        /// Index of the peer GPU within the server.
        gpu: usize,
    },
    /// Offloaded to host DRAM over PCIe.
    HostDram,
}

impl std::fmt::Display for TensorLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorLocation::LocalHbm => f.write_str("local-hbm"),
            TensorLocation::PeerGpu { gpu } => write!(f, "peer-gpu{gpu}"),
            TensorLocation::HostDram => f.write_str("host-dram"),
        }
    }
}

/// A migratable tensor: payload plus current location and generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AquaTensor {
    id: TensorId,
    payload: Bytes,
    location: TensorLocation,
    generation: u64,
}

impl AquaTensor {
    /// Tensor id.
    pub fn id(&self) -> TensorId {
        self.id
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Returns `true` for an empty payload.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Current physical location.
    pub fn location(&self) -> TensorLocation {
        self.location
    }

    /// Number of migrations this tensor has undergone.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A resolved pointer to a tensor, valid until the next migration — the
/// `to_torch_tensor()` result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorRef {
    id: TensorId,
    generation: u64,
    location: TensorLocation,
}

impl TensorRef {
    /// Where the pointer pointed when it was taken.
    pub fn location(&self) -> TensorLocation {
        self.location
    }
}

/// Error dereferencing a stale [`TensorRef`] after a migration (the safe
/// analogue of the paper's "issues similar to segmentation faults").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleTensorRef {
    /// The tensor whose pointer went stale.
    pub id: TensorId,
    /// Generation the reference was taken at.
    pub ref_generation: u64,
    /// The tensor's current generation.
    pub current_generation: u64,
}

impl std::fmt::Display for StaleTensorRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale reference to tensor {:?}: taken at generation {}, tensor is at {}",
            self.id, self.ref_generation, self.current_generation
        )
    }
}

impl std::error::Error for StaleTensorRef {}

/// The per-consumer table of AQUA tensors managed by AQUA-LIB.
///
/// # Example
///
/// ```
/// use aqua_core::tensor::{TensorLocation, TensorTable};
/// use bytes::Bytes;
///
/// let mut table = TensorTable::new();
/// let id = table.to_responsive_tensor(Bytes::from_static(b"kv-cache"), TensorLocation::LocalHbm);
/// let ptr = table.to_torch_tensor(id).unwrap();
///
/// // aqua.respond(): AQUA migrates the tensor to the peer GPU.
/// table.migrate(id, TensorLocation::PeerGpu { gpu: 1 });
///
/// // The old pointer is now stale — an error, not a segfault.
/// assert!(table.read(ptr).is_err());
/// // Re-resolving yields a fresh, usable pointer with intact data.
/// let fresh = table.to_torch_tensor(id).unwrap();
/// assert_eq!(table.read(fresh).unwrap(), Bytes::from_static(b"kv-cache"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TensorTable {
    next: u64,
    tensors: BTreeMap<TensorId, AquaTensor>,
}

impl TensorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a payload as an AQUA tensor (`to_responsive_tensor`).
    pub fn to_responsive_tensor(&mut self, payload: Bytes, location: TensorLocation) -> TensorId {
        let id = TensorId(self.next);
        self.next += 1;
        self.tensors.insert(
            id,
            AquaTensor {
                id,
                payload,
                location,
                generation: 0,
            },
        );
        id
    }

    /// Resolves the current pointer for a tensor (`to_torch_tensor`).
    pub fn to_torch_tensor(&self, id: TensorId) -> Option<TensorRef> {
        self.tensors.get(&id).map(|t| TensorRef {
            id,
            generation: t.generation,
            location: t.location,
        })
    }

    /// Reads payload through a resolved pointer.
    ///
    /// # Errors
    ///
    /// Returns [`StaleTensorRef`] if the tensor migrated after the reference
    /// was taken.
    pub fn read(&self, r: TensorRef) -> Result<Bytes, StaleTensorRef> {
        let t = self.tensors.get(&r.id).ok_or(StaleTensorRef {
            id: r.id,
            ref_generation: r.generation,
            current_generation: u64::MAX,
        })?;
        if t.generation != r.generation {
            return Err(StaleTensorRef {
                id: r.id,
                ref_generation: r.generation,
                current_generation: t.generation,
            });
        }
        Ok(t.payload.clone())
    }

    /// Moves a tensor to a new location, bumping its generation (performed
    /// by AQUA-LIB inside `aqua.respond()`). Payload is preserved.
    ///
    /// Returns the bytes moved, or `None` for an unknown id. Migrating to
    /// the current location is a no-op that does not invalidate pointers.
    pub fn migrate(&mut self, id: TensorId, to: TensorLocation) -> Option<u64> {
        let t = self.tensors.get_mut(&id)?;
        if t.location == to {
            return Some(0);
        }
        t.location = to;
        t.generation += 1;
        Some(t.payload.len() as u64)
    }

    /// Frees a tensor, returning its size in bytes.
    pub fn free(&mut self, id: TensorId) -> Option<u64> {
        self.tensors.remove(&id).map(|t| t.payload.len() as u64)
    }

    /// Looks up a tensor.
    pub fn get(&self, id: TensorId) -> Option<&AquaTensor> {
        self.tensors.get(&id)
    }

    /// Number of live tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Returns `true` if no tensors are live.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total bytes stored at `location`.
    pub fn bytes_at(&self, location: TensorLocation) -> u64 {
        self.tensors
            .values()
            .filter(|t| t.location == location)
            .map(|t| t.payload.len() as u64)
            .sum()
    }

    /// Ids of tensors currently stored at `location`, in id order.
    pub fn ids_at(&self, location: TensorLocation) -> Vec<TensorId> {
        self.tensors
            .values()
            .filter(|t| t.location == location)
            .map(|t| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xAB; n])
    }

    #[test]
    fn wrap_resolve_read() {
        let mut t = TensorTable::new();
        let id = t.to_responsive_tensor(payload(64), TensorLocation::LocalHbm);
        let r = t.to_torch_tensor(id).unwrap();
        assert_eq!(r.location(), TensorLocation::LocalHbm);
        assert_eq!(t.read(r).unwrap().len(), 64);
        assert_eq!(t.get(id).unwrap().generation(), 0);
    }

    #[test]
    fn migration_invalidates_old_pointers() {
        let mut t = TensorTable::new();
        let id = t.to_responsive_tensor(payload(10), TensorLocation::LocalHbm);
        let old = t.to_torch_tensor(id).unwrap();
        assert_eq!(t.migrate(id, TensorLocation::PeerGpu { gpu: 1 }), Some(10));
        let err = t.read(old).unwrap_err();
        assert_eq!(err.ref_generation, 0);
        assert_eq!(err.current_generation, 1);
        assert!(!err.to_string().is_empty());
        // Fresh pointer works and sees the new location with intact payload.
        let fresh = t.to_torch_tensor(id).unwrap();
        assert_eq!(fresh.location(), TensorLocation::PeerGpu { gpu: 1 });
        assert_eq!(t.read(fresh).unwrap(), payload(10));
    }

    #[test]
    fn noop_migration_keeps_pointers_valid() {
        let mut t = TensorTable::new();
        let id = t.to_responsive_tensor(payload(5), TensorLocation::HostDram);
        let r = t.to_torch_tensor(id).unwrap();
        assert_eq!(t.migrate(id, TensorLocation::HostDram), Some(0));
        assert!(t.read(r).is_ok());
    }

    #[test]
    fn free_and_accounting() {
        let mut t = TensorTable::new();
        let a = t.to_responsive_tensor(payload(100), TensorLocation::PeerGpu { gpu: 1 });
        let b = t.to_responsive_tensor(payload(50), TensorLocation::HostDram);
        assert_eq!(t.bytes_at(TensorLocation::PeerGpu { gpu: 1 }), 100);
        assert_eq!(t.bytes_at(TensorLocation::HostDram), 50);
        assert_eq!(t.ids_at(TensorLocation::HostDram), vec![b]);
        assert_eq!(t.free(a), Some(100));
        assert_eq!(t.free(a), None, "double free returns None");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn read_after_free_is_stale() {
        let mut t = TensorTable::new();
        let id = t.to_responsive_tensor(payload(1), TensorLocation::LocalHbm);
        let r = t.to_torch_tensor(id).unwrap();
        t.free(id);
        assert!(t.read(r).is_err());
        assert!(t.to_torch_tensor(id).is_none());
    }

    proptest! {
        /// Payload bytes survive arbitrary migration sequences, and stale
        /// references never read successfully.
        #[test]
        fn payload_survives_migrations(locs in proptest::collection::vec(0u8..3, 1..50)) {
            let mut t = TensorTable::new();
            let data = Bytes::from(vec![7u8; 123]);
            let id = t.to_responsive_tensor(data.clone(), TensorLocation::LocalHbm);
            for l in locs {
                let before = t.to_torch_tensor(id).unwrap();
                let to = match l {
                    0 => TensorLocation::LocalHbm,
                    1 => TensorLocation::PeerGpu { gpu: 1 },
                    _ => TensorLocation::HostDram,
                };
                let moved = t.migrate(id, to).unwrap();
                if moved > 0 {
                    prop_assert!(t.read(before).is_err());
                } else {
                    prop_assert!(t.read(before).is_ok());
                }
                let after = t.to_torch_tensor(id).unwrap();
                prop_assert_eq!(t.read(after).unwrap(), data.clone());
            }
        }
    }
}
