//! The AQUA central coordinator (§3).
//!
//! "The central coordinator keeps track of *consumers* and *producers* of
//! HBM … The coordinator program exposes a set of REST endpoints." In this
//! reproduction the endpoints are typed methods on a thread-safe store
//! (`parking_lot::Mutex` inside an `Arc`), and [`crate::messages`] provides
//! the serialisable envelope that mirrors the REST surface.
//!
//! Lifecycle (paper §B.1):
//!
//! 1. A producer's informer calls [`Coordinator::lease`] to donate HBM.
//! 2. A consumer's AQUA-LIB calls [`Coordinator::allocate`] for each
//!    offloaded region; the coordinator places it on a same-server lease or
//!    answers "DRAM" when nothing is available (transparent fallback).
//! 3. Under load the producer calls [`Coordinator::reclaim_request`]; the
//!    consumer learns about it at its next `respond()` boundary via
//!    [`Coordinator::pending_reclaim`], migrates the bytes away, and calls
//!    [`Coordinator::release`]. The producer polls
//!    [`Coordinator::reclaim_status`] until it reads
//!    [`ReclaimStatus::Released`].
//!
//! # Epochs and crash-recovery (DESIGN §4.12)
//!
//! The coordinator carries a monotonically increasing **epoch**, starting
//! at 1. A process crash ([`Coordinator::crash`], usually driven by a
//! [`FaultKind::CoordinatorCrash`] window through
//! [`Coordinator::set_fault_plan`]) wipes the in-memory lease book and
//! bumps the epoch; recovery ([`Coordinator::recover`]) reconstructs the
//! book from informer resync reports ([`Coordinator::resync_report`]) and
//! offloader re-registration ([`Coordinator::rehome`]). Every grant carries
//! `(epoch, lease_id)`, and the fenced verbs
//! ([`Coordinator::free_fenced`], [`Coordinator::heartbeat_fenced`],
//! [`Coordinator::resync_report`]) reject a stale epoch with
//! [`AquaError::StaleEpoch`] instead of mutating the rebuilt book — writes
//! are fenced structurally, because a pre-crash `(epoch, lease)` no longer
//! exists in the rebuilt book and [`Coordinator::try_allocate_on`] refuses
//! it. This makes split-brain double-grants impossible; the aqua-audit
//! invariants `stale_epoch_accepted` and `double_grant_across_epochs`
//! prove it on every audited run.

use crate::error::AquaError;
use aqua_sim::audit::{AuditViolation, SharedAuditor};
use aqua_sim::fault::{FaultKind, FaultPlan};
use aqua_sim::gpu::GpuId;
use aqua_sim::time::{SimDuration, SimTime};
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Cluster-wide address of a GPU: server index plus GPU index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuRef {
    /// Server index within the cluster.
    pub server: usize,
    /// GPU index within the server.
    pub gpu: GpuId,
}

impl GpuRef {
    /// A GPU on server 0 (single-server experiments).
    pub fn single(gpu: GpuId) -> Self {
        GpuRef { server: 0, gpu }
    }

    /// A GPU on an explicit server.
    pub fn new(server: usize, gpu: GpuId) -> Self {
        GpuRef { server, gpu }
    }
}

impl std::fmt::Display for GpuRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}/{}", self.server, self.gpu)
    }
}

/// Identifier of one memory lease (one producer's donation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

/// Where the coordinator placed an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationSite {
    /// On a producer GPU's leased HBM (fast path over the fabric).
    Peer {
        /// The lease backing the allocation.
        lease: LeaseId,
        /// The producer GPU holding the bytes.
        gpu: GpuRef,
    },
    /// In host DRAM (fallback path over PCIe).
    Dram,
}

/// Producer-visible state of a reclaim request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReclaimStatus {
    /// No reclaim is in flight for this lease.
    None,
    /// Consumers have been signalled and are still migrating bytes away.
    Pending,
    /// All bytes left the lease; the producer may take its memory back.
    Released {
        /// Bytes returned to the producer.
        bytes: u64,
        /// Simulation time at which the last byte left the producer's HBM.
        at: SimTime,
    },
}

/// Observable lifecycle state of a lease (for failure handling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    /// Accepting allocations.
    Live,
    /// Reclaim in flight; no new allocations, existing bytes draining.
    Reclaiming,
    /// Gone: drained, expired, or force-revoked.
    Revoked,
    /// The coordinator has never heard of this lease id.
    Unknown,
}

/// Failure-detection knobs. Both default to `None` (disabled), which keeps
/// fault-free runs byte-identical to the pre-fault-injection behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureConfig {
    /// A producer that goes longer than this without a heartbeat is
    /// presumed dead; its leases are revoked with the consumer bytes inside
    /// them marked stranded.
    pub heartbeat_ttl: Option<SimDuration>,
    /// A reclaiming lease whose consumer has not finished releasing within
    /// this deadline is force-revoked so the producer is not held hostage
    /// by a stuck consumer.
    pub reclaim_deadline: Option<SimDuration>,
}

impl FailureConfig {
    /// The configuration the chaos experiments run with: 10 s heartbeat
    /// TTL, 60 s reclaim deadline.
    pub fn chaos() -> Self {
        FailureConfig {
            heartbeat_ttl: Some(SimDuration::from_secs(10)),
            reclaim_deadline: Some(SimDuration::from_secs(60)),
        }
    }
}

#[derive(Debug, Clone)]
struct Lease {
    producer: GpuRef,
    total: u64,
    used: u64,
    reclaiming: bool,
    released_at: SimTime,
    revoked: bool,
    /// Last heartbeat from the producer; `None` until the first `advance`
    /// arms the watchdog (leases are granted without a timestamp).
    last_heartbeat: Option<SimTime>,
    /// Absolute deadline for a reclaim in flight; armed by `advance` or
    /// [`Coordinator::reclaim_request_at`].
    reclaim_deadline: Option<SimTime>,
    /// A force-revoked lease still owes the producer one
    /// [`ReclaimStatus::Released`] report.
    pending_report: bool,
    /// The coordinator epoch the grant belongs to. In a correctly fenced
    /// control plane every live lease carries the current epoch; a live
    /// lease from another epoch is the `double_grant_across_epochs`
    /// violation.
    epoch: u64,
}

#[derive(Debug)]
struct State {
    next_lease: u64,
    leases: HashMap<LeaseId, Lease>,
    /// Consumer → producer pairings established by AQUA-PLACER (§4:
    /// "Selecting which GPU will be the producer for a consumer GPU is
    /// explicitly done by the AQUA-PLACER before the model starts").
    pairings: HashMap<GpuRef, GpuRef>,
    failure_config: FailureConfig,
    /// Timestamp of the last watchdog sweep (audited for monotonicity).
    last_advance: Option<SimTime>,
    /// Monotonically increasing fencing epoch; bumped by every crash.
    epoch: u64,
    /// Whether the process is down (crashed, rebuild not yet complete).
    down: bool,
    /// When the most recent rebuild completed (cleared by the next crash).
    recovered_at: Option<SimTime>,
    /// First post-recovery grant/re-home — with `recovered_at`, the
    /// experiment's time-to-first-regrant metric.
    first_regrant_at: Option<SimTime>,
    /// Per fault-plan window: (start applied, end applied). Control-plane
    /// windows are replayed exactly once each by `advance`.
    fault_applied: Vec<(bool, bool)>,
}

impl Default for State {
    fn default() -> Self {
        State {
            next_lease: 0,
            leases: HashMap::new(),
            pairings: HashMap::new(),
            failure_config: FailureConfig::default(),
            last_advance: None,
            epoch: 1,
            down: false,
            recovered_at: None,
            first_regrant_at: None,
            fault_applied: Vec::new(),
        }
    }
}

/// The thread-safe central store.
///
/// # Example
///
/// ```
/// use aqua_core::coordinator::{AllocationSite, Coordinator, GpuRef};
/// use aqua_sim::gpu::GpuId;
///
/// let coord = Coordinator::new();
/// let producer = GpuRef::single(GpuId(1));
/// let consumer = GpuRef::single(GpuId(0));
/// let lease = coord.lease(producer, 10 << 30);
/// match coord.allocate(consumer, 1 << 30) {
///     AllocationSite::Peer { lease: l, gpu } => {
///         assert_eq!(l, lease);
///         assert_eq!(gpu, producer);
///     }
///     AllocationSite::Dram => unreachable!("lease had room"),
/// }
/// ```
#[derive(Debug)]
pub struct Coordinator {
    state: Mutex<State>,
    tracer: Mutex<SharedTracer>,
    auditor: Mutex<Option<SharedAuditor>>,
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
}

impl Default for Coordinator {
    fn default() -> Self {
        Self::new()
    }
}

impl Coordinator {
    /// Creates an empty coordinator (tracing disabled).
    pub fn new() -> Self {
        Coordinator {
            state: Mutex::new(State::default()),
            tracer: Mutex::new(null_tracer()),
            auditor: Mutex::new(None),
            fault_plan: Mutex::new(None),
        }
    }

    /// Attaches a tracer. Verb invocations feed always-on counters
    /// (`coordinator.*`); the timed lease/reclaim events are emitted by the
    /// callers that own the simulation clock (informers and offloaders) —
    /// most verbs, like their REST originals, carry no timestamp.
    pub fn set_tracer(&self, tracer: SharedTracer) {
        *self.tracer.lock() = tracer;
    }

    fn tracer(&self) -> SharedTracer {
        self.tracer.lock().clone()
    }

    /// Attaches an invariant auditor: lease state-machine legality (no
    /// double-grant, no double-free, no stale free of bytes a revoked lease
    /// never held) and heartbeat/watchdog monotonicity are then checked on
    /// every verb. A verb the coordinator properly *rejects* because the
    /// caller's view was stale (a free racing a revocation) is
    /// protocol-legal and records nothing.
    pub fn set_auditor(&self, auditor: SharedAuditor) {
        *self.auditor.lock() = Some(auditor);
    }

    fn audit(&self, build: impl FnOnce() -> AuditViolation) {
        if let Some(aud) = self.auditor.lock().clone() {
            aud.record(build());
        }
    }

    /// `/lease`: a producer offers `bytes` of its HBM. Returns the lease id.
    /// Epoch-oblivious wrapper around [`Coordinator::grant`] for callers
    /// that predate crash-recovery (static leases, legacy tests).
    pub fn lease(&self, producer: GpuRef, bytes: u64) -> LeaseId {
        self.grant(producer, bytes).1
    }

    /// `/lease` with the fencing epoch attached: a producer offers `bytes`
    /// of its HBM and learns which epoch the grant belongs to. The fenced
    /// verbs ([`Coordinator::free_fenced`],
    /// [`Coordinator::heartbeat_fenced`]) must present this epoch later and
    /// are rejected with [`AquaError::StaleEpoch`] once a crash bumps it.
    pub fn grant(&self, producer: GpuRef, bytes: u64) -> (u64, LeaseId) {
        self.tracer().incr("coordinator.lease", 1);
        let mut st = self.state.lock();
        let epoch = st.epoch;
        // Extend an existing live lease from the same producer if present
        // (same epoch only — merging across epochs would be a fencing hole).
        if let Some((id, lease)) = st.leases.iter_mut().find(|(_, l)| {
            l.producer == producer && !l.revoked && !l.reclaiming && l.epoch == epoch
        }) {
            lease.total += bytes;
            return (epoch, *id);
        }
        let id = LeaseId(st.next_lease);
        st.next_lease += 1;
        st.leases.insert(
            id,
            Lease {
                producer,
                total: bytes,
                used: 0,
                reclaiming: false,
                released_at: SimTime::ZERO,
                revoked: false,
                last_heartbeat: None,
                reclaim_deadline: None,
                pending_report: false,
                epoch,
            },
        );
        // aqua-audit: the merge above must keep every producer at one live
        // non-reclaiming lease; ending up with two is a double grant.
        let double_granted = st
            .leases
            .values()
            .filter(|l| l.producer == producer && !l.revoked && !l.reclaiming)
            .count()
            > 1;
        drop(st);
        if double_granted {
            self.audit(|| AuditViolation::DoubleGrant {
                producer: producer.to_string(),
                lease: id.0,
            });
        }
        (epoch, id)
    }

    /// Installs the failure-detection knobs (heartbeat TTL, reclaim
    /// deadline). With the default config [`Coordinator::advance`] is a
    /// no-op.
    pub fn set_failure_config(&self, cfg: FailureConfig) {
        self.state.lock().failure_config = cfg;
    }

    /// Installs the fault plan whose control-plane windows this coordinator
    /// replays: [`Coordinator::advance`] applies crash/rebuild and
    /// partition start/heal boundaries exactly once each, and
    /// [`Coordinator::reachable`] answers from the plan's active windows.
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault_plan.lock() = Some(plan);
    }

    /// Whether `gpu` can currently reach the coordinator: the process is
    /// not inside a [`FaultKind::CoordinatorCrash`] window and no active
    /// partition puts the GPU on the far side. Always true without a fault
    /// plan. Pure function of the plan and `at`, so informers and
    /// offloaders on different PDES lanes agree without any shared state.
    pub fn reachable(&self, gpu: GpuId, at: SimTime) -> bool {
        self.fault_plan
            .lock()
            .as_ref()
            .is_none_or(|p| p.coordinator_reachable(gpu, at))
    }

    /// The current fencing epoch (starts at 1; bumped by every crash).
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Whether the process is down (crashed, rebuild not yet complete).
    pub fn is_down(&self) -> bool {
        self.state.lock().down
    }

    /// `(recovered_at, first_regrant_at)` of the most recent crash — the
    /// experiment's time-to-first-regrant metric once both are `Some`.
    pub fn recovery_metrics(&self) -> (Option<SimTime>, Option<SimTime>) {
        let st = self.state.lock();
        (st.recovered_at, st.first_regrant_at)
    }

    /// Simulates a coordinator process crash at `at`: the in-memory lease
    /// book is lost and the epoch is bumped, fencing every outstanding
    /// grant. The process stays down (sweeps do nothing, fenced verbs
    /// answer [`AquaError::ServiceUnavailable`]) until
    /// [`Coordinator::recover`]. AQUA-PLACER pairings survive — they are
    /// static configuration, not soft state. Idempotent while down.
    pub fn crash(&self, at: SimTime) {
        let (from, to, lost_leases, lost_bytes);
        {
            let mut st = self.state.lock();
            if st.down {
                return;
            }
            lost_leases = st.leases.values().filter(|l| !l.revoked).count() as u64;
            lost_bytes = st
                .leases
                .values()
                .filter(|l| !l.revoked)
                .map(|l| l.total)
                .sum::<u64>();
            st.leases.clear();
            from = st.epoch;
            st.epoch += 1;
            to = st.epoch;
            st.down = true;
            st.recovered_at = None;
            st.first_regrant_at = None;
            // A restarted process has no memory of earlier sweeps; the
            // watchdog re-arms on the first post-recovery advance.
            st.last_advance = None;
        }
        let tracer = self.tracer();
        tracer.incr("coordinator.crashes", 1);
        trace!(
            tracer,
            TraceEvent::CoordinatorCrashed {
                epoch: from,
                lost_leases,
                lost_bytes,
                at,
            }
        );
        trace!(tracer, TraceEvent::EpochBumped { from, to, at });
    }

    /// Completes the rebuild after a [`Coordinator::crash`]: the process
    /// answers verbs again (in the bumped epoch) and waits for resync
    /// reports and re-homing to repopulate the book. Idempotent while up.
    pub fn recover(&self, at: SimTime) {
        let epoch;
        {
            let mut st = self.state.lock();
            if !st.down {
                return;
            }
            st.down = false;
            st.recovered_at = Some(at);
            epoch = st.epoch;
        }
        let tracer = self.tracer();
        tracer.incr("coordinator.recoveries", 1);
        trace!(tracer, TraceEvent::CoordinatorRecovered { epoch, at });
    }

    /// Journals a fencing rejection (counter + `stale_epoch_rejected`).
    fn reject_stale(&self, verb: &str, held: u64, current: u64, at: SimTime) {
        let tracer = self.tracer();
        tracer.incr("coordinator.stale_epoch_rejections", 1);
        trace!(
            tracer,
            TraceEvent::StaleEpochRejected {
                verb: verb.to_owned(),
                held,
                current,
                at,
            }
        );
    }

    /// Down/epoch fencing shared by the fenced verbs: `Err` while the
    /// process is down or when `held` is not the current epoch.
    fn fence(&self, verb: &str, held: u64, at: SimTime) -> Result<(), AquaError> {
        let (down, current) = {
            let st = self.state.lock();
            (st.down, st.epoch)
        };
        if down {
            return Err(AquaError::ServiceUnavailable);
        }
        if held != current {
            self.reject_stale(verb, held, current, at);
            return Err(AquaError::StaleEpoch { held, current });
        }
        Ok(())
    }

    /// `/heartbeat` with the fencing check: the producer presents the epoch
    /// it believes is current. A stale liveness proof is worse than none —
    /// a pre-crash heartbeat must never keep a rebuilt lease alive.
    ///
    /// # Errors
    ///
    /// [`AquaError::ServiceUnavailable`] while the process is down,
    /// [`AquaError::StaleEpoch`] when `held_epoch` is not current (also
    /// journaled as `stale_epoch_rejected`).
    pub fn heartbeat_fenced(
        &self,
        producer: GpuRef,
        now: SimTime,
        held_epoch: u64,
    ) -> Result<(), AquaError> {
        self.fence("heartbeat", held_epoch, now)?;
        self.heartbeat(producer, now);
        Ok(())
    }

    /// `/free` with the fencing check: rejected with
    /// [`AquaError::StaleEpoch`] when `held_epoch` predates a crash, so a
    /// consumer whose view is stale can never mutate the rebuilt book.
    ///
    /// # Errors
    ///
    /// [`AquaError::ServiceUnavailable`] while down,
    /// [`AquaError::StaleEpoch`] on an epoch mismatch, otherwise the
    /// [`Coordinator::free`] contract.
    pub fn free_fenced(
        &self,
        lease: LeaseId,
        bytes: u64,
        held_epoch: u64,
        now: SimTime,
    ) -> Result<(), AquaError> {
        self.fence("free", held_epoch, now)?;
        self.tracer().incr("coordinator.free", 1);
        self.free_inner("free", lease, bytes, now)
    }

    /// `/resync`: a producer's informer re-registers its full donated
    /// inventory after noticing an epoch change — the informer-side half
    /// of control-plane reconstruction. Fenced: the report must carry the
    /// coordinator's *current* epoch. A report prepared against an older
    /// epoch (e.g. racing a second crash that bumped the epoch again
    /// mid-resync) is discarded with [`AquaError::StaleEpoch`] and
    /// journaled, never merged into the rebuilt book.
    ///
    /// # Errors
    ///
    /// [`AquaError::ServiceUnavailable`] while the process is down,
    /// [`AquaError::StaleEpoch`] when `observed_epoch` is not current.
    pub fn resync_report(
        &self,
        producer: GpuRef,
        bytes: u64,
        observed_epoch: u64,
        now: SimTime,
    ) -> Result<LeaseId, AquaError> {
        self.fence("resync", observed_epoch, now)?;
        Ok(self.merge_resync(producer, bytes, observed_epoch, now))
    }

    /// Unfenced body of [`Coordinator::resync_report`]: merges a producer's
    /// reported inventory into the book, stamping the lease with
    /// `report_epoch` exactly as claimed. A correct control plane only
    /// reaches this through the fencing check, so an unfenced stale merge
    /// records `stale_epoch_accepted`, and any live lease it leaves behind
    /// from a non-current epoch records `double_grant_across_epochs`.
    /// Public so the fuzz campaign can plant exactly that bypass and prove
    /// the audit catches it.
    pub fn merge_resync(
        &self,
        producer: GpuRef,
        bytes: u64,
        report_epoch: u64,
        at: SimTime,
    ) -> LeaseId {
        self.tracer().incr("coordinator.resync", 1);
        let mut violations: Vec<AuditViolation> = Vec::new();
        let id;
        {
            let mut st = self.state.lock();
            let current = st.epoch;
            if report_epoch != current {
                violations.push(AuditViolation::StaleEpochAccepted {
                    scope: "resync".to_owned(),
                    held: report_epoch,
                    current,
                    at,
                });
            }
            // A resync carries the producer's *full* inventory, so it can
            // only grow an existing same-epoch lease, never shrink it.
            if let Some((eid, l)) = st.leases.iter_mut().find(|(_, l)| {
                l.producer == producer && !l.revoked && !l.reclaiming && l.epoch == report_epoch
            }) {
                l.total = l.total.max(bytes);
                l.last_heartbeat = Some(at);
                id = *eid;
            } else {
                id = LeaseId(st.next_lease);
                st.next_lease += 1;
                st.leases.insert(
                    id,
                    Lease {
                        producer,
                        total: bytes,
                        used: 0,
                        reclaiming: false,
                        released_at: SimTime::ZERO,
                        revoked: false,
                        last_heartbeat: Some(at),
                        reclaim_deadline: None,
                        pending_report: false,
                        epoch: report_epoch,
                    },
                );
            }
            // Any live lease now claiming a non-current epoch is the
            // split-brain the fencing exists to prevent.
            let mut cross: Vec<(u64, u64)> = st
                .leases
                .iter()
                .filter(|(_, l)| l.producer == producer && !l.revoked && l.epoch != current)
                .map(|(id, l)| (id.0, l.epoch))
                .collect();
            cross.sort_unstable();
            for (lease, prior) in cross {
                violations.push(AuditViolation::DoubleGrantAcrossEpochs {
                    producer: producer.to_string(),
                    lease,
                    prior_epoch: prior,
                    epoch: current,
                });
            }
            if report_epoch == current && st.recovered_at.is_some() && st.first_regrant_at.is_none()
            {
                st.first_regrant_at = Some(at);
            }
        }
        for v in violations {
            self.audit(move || v);
        }
        id
    }

    /// Post-recovery re-registration of consumer bytes that still
    /// physically live on `producer`'s HBM: places them back onto the
    /// producer's current-epoch lease (least-loaded, ties by id) and
    /// journals `lease_reconciled` with outcome `rehomed`. Returns the new
    /// `(epoch, lease)`; `None` when the producer has not resynced yet or
    /// lacks room — the caller must then migrate the bytes to DRAM.
    pub fn rehome(&self, producer: GpuRef, bytes: u64, now: SimTime) -> Option<(u64, LeaseId)> {
        self.tracer().incr("coordinator.rehome", 1);
        let granted;
        {
            let mut st = self.state.lock();
            if st.down {
                return None;
            }
            let epoch = st.epoch;
            let mut candidates: Vec<(&LeaseId, &mut Lease)> = st
                .leases
                .iter_mut()
                .filter(|(_, l)| {
                    l.producer == producer
                        && !l.revoked
                        && !l.reclaiming
                        && l.epoch == epoch
                        && l.total - l.used >= bytes
                })
                .collect();
            candidates.sort_by_key(|(id, l)| (l.used, **id));
            let (eid, l) = candidates.into_iter().next()?;
            l.used += bytes;
            granted = (epoch, *eid);
            if st.recovered_at.is_some() && st.first_regrant_at.is_none() {
                st.first_regrant_at = Some(now);
            }
        }
        let tracer = self.tracer();
        trace!(
            tracer,
            TraceEvent::LeaseReconciled {
                producer: producer.to_string(),
                lease: granted.1 .0,
                bytes,
                epoch: granted.0,
                outcome: "rehomed".to_owned(),
                at: now,
            }
        );
        Some(granted)
    }

    /// Applies the control-plane fault windows whose boundaries `now` has
    /// passed, exactly once each and in boundary-time order: a
    /// [`FaultKind::CoordinatorCrash`] start wipes the book and bumps the
    /// epoch, its end completes the rebuild, and
    /// [`FaultKind::Partition`] edges journal
    /// `partition_started`/`partition_healed`. Events are stamped with the
    /// window boundary times, so the journal is independent of when the
    /// sweep happens to run (jobs/lanes determinism).
    fn apply_control_plane_faults(&self, now: SimTime) {
        let Some(plan) = self.fault_plan.lock().clone() else {
            return;
        };
        // (boundary time, window index, is_end) not yet applied.
        let mut pending: Vec<(SimTime, usize, bool)> = Vec::new();
        {
            let mut st = self.state.lock();
            if st.fault_applied.len() < plan.windows().len() {
                st.fault_applied
                    .resize(plan.windows().len(), (false, false));
            }
            for (i, w) in plan.windows().iter().enumerate() {
                if !matches!(
                    w.kind,
                    FaultKind::CoordinatorCrash | FaultKind::Partition { .. }
                ) {
                    continue;
                }
                if now >= w.start && !st.fault_applied[i].0 {
                    st.fault_applied[i].0 = true;
                    pending.push((w.start, i, false));
                }
                if now >= w.end && !st.fault_applied[i].1 {
                    st.fault_applied[i].1 = true;
                    pending.push((w.end, i, true));
                }
            }
        }
        pending.sort_by_key(|&(t, i, is_end)| (t, is_end, i));
        for (t, i, is_end) in pending {
            match plan.windows()[i].kind {
                FaultKind::CoordinatorCrash => {
                    if is_end {
                        self.recover(t);
                    } else {
                        self.crash(t);
                    }
                }
                FaultKind::Partition { split } => {
                    let tracer = self.tracer();
                    if is_end {
                        tracer.incr("coordinator.partitions_healed", 1);
                        trace!(
                            tracer,
                            TraceEvent::PartitionHealed {
                                split: split as u64,
                                at: t,
                            }
                        );
                    } else {
                        tracer.incr("coordinator.partitions", 1);
                        trace!(
                            tracer,
                            TraceEvent::PartitionStarted {
                                split: split as u64,
                                at: t,
                            }
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// `/heartbeat`: a producer proves it is alive at `now`. Stamps every
    /// live lease of `producer`. Cheap and journal-silent (counter only),
    /// so informers can call it every control tick.
    pub fn heartbeat(&self, producer: GpuRef, now: SimTime) {
        self.tracer().incr("coordinator.heartbeat", 1);
        let mut regressed: Option<SimTime> = None;
        {
            let mut st = self.state.lock();
            for l in st.leases.values_mut() {
                if l.producer == producer && !l.revoked {
                    if l.last_heartbeat.is_some_and(|prev| now < prev) {
                        regressed = l.last_heartbeat;
                    }
                    l.last_heartbeat = Some(now);
                }
            }
        }
        if let Some(prev) = regressed {
            self.audit(|| AuditViolation::TimeRegression {
                scope: "coordinator.heartbeat".to_owned(),
                prev,
                next: now,
            });
        }
    }

    /// Observable state of a lease.
    pub fn lease_state(&self, lease: LeaseId) -> LeaseState {
        let st = self.state.lock();
        match st.leases.get(&lease) {
            None => LeaseState::Unknown,
            Some(l) if l.revoked => LeaseState::Revoked,
            Some(l) if l.reclaiming => LeaseState::Reclaiming,
            Some(_) => LeaseState::Live,
        }
    }

    /// Total bytes still leased by `producer` on non-revoked leases —
    /// what a producer's informer should believe it has donated.
    pub fn live_lease_bytes(&self, producer: GpuRef) -> u64 {
        let st = self.state.lock();
        st.leases
            .values()
            .filter(|l| l.producer == producer && !l.revoked)
            .map(|l| l.total)
            .sum()
    }

    /// Failure-detection sweep at simulated time `now`. First replays any
    /// control-plane fault boundaries `now` has passed (coordinator
    /// crash/rebuild, partition start/heal — see
    /// [`Coordinator::set_fault_plan`]); then, unless the process is down,
    /// expires leases whose producers missed the heartbeat TTL and
    /// force-revokes reclaims that blew their deadline. Returns how many
    /// leases were revoked.
    ///
    /// Watchdogs arm lazily: the first `advance` after a grant (or after a
    /// reclaim starts) stamps the baseline, so a lease is never punished
    /// for time that passed before monitoring began.
    ///
    /// # Sweep order (pinned)
    ///
    /// Per lease, the heartbeat TTL is checked *before* the reclaim
    /// deadline, and an expiry wins: a dead producer's lease journals
    /// `lease_expired`, never `lease_force_revoked`, even when its reclaim
    /// deadline has also lapsed. The collected events are sorted by lease
    /// id before journaling, so the journal never depends on hash-map
    /// iteration (insertion) order. Epoch recovery replays this same
    /// sweep; the order is pinned by the
    /// `advance_sweep_order_is_ttl_first_then_lease_id` test so revocation
    /// events cannot reorder between jobs/lanes configurations.
    pub fn advance(&self, now: SimTime) -> u64 {
        self.apply_control_plane_faults(now);
        if self.state.lock().down {
            // A crashed process sweeps nothing; its watchdog state died
            // with the lease book.
            return 0;
        }
        let cfg = self.state.lock().failure_config;
        if cfg.heartbeat_ttl.is_none() && cfg.reclaim_deadline.is_none() {
            return 0;
        }
        // Collect events first, emit after unlocking — and sort by lease id
        // so the journal does not depend on HashMap iteration order.
        let mut events: Vec<(LeaseId, TraceEvent)> = Vec::new();
        let mut regressed: Option<SimTime> = None;
        {
            let mut st = self.state.lock();
            if st.last_advance.is_some_and(|prev| now < prev) {
                regressed = st.last_advance;
            }
            st.last_advance = Some(st.last_advance.map_or(now, |prev| prev.max(now)));
            for (id, l) in st.leases.iter_mut() {
                if l.revoked {
                    continue;
                }
                if let Some(ttl) = cfg.heartbeat_ttl {
                    match l.last_heartbeat {
                        None => l.last_heartbeat = Some(now),
                        Some(hb) if now.duration_since(hb.min(now)) > ttl => {
                            // Producer is dead: nobody is left to take the
                            // memory back, so no Released report is owed.
                            l.revoked = true;
                            l.pending_report = false;
                            events.push((
                                *id,
                                TraceEvent::LeaseExpired {
                                    producer: l.producer.to_string(),
                                    lease: id.0,
                                    stranded: l.used,
                                    at: now,
                                },
                            ));
                            continue;
                        }
                        Some(_) => {}
                    }
                }
                if !l.reclaiming {
                    continue;
                }
                if let Some(deadline) = cfg.reclaim_deadline {
                    match l.reclaim_deadline {
                        None => l.reclaim_deadline = Some(now + deadline),
                        Some(d) if now >= d && l.used > 0 => {
                            // Consumer blew the deadline: hand the memory
                            // back to the (live) producer anyway.
                            l.revoked = true;
                            l.pending_report = true;
                            l.released_at = l.released_at.max(d);
                            events.push((
                                *id,
                                TraceEvent::LeaseForceRevoked {
                                    producer: l.producer.to_string(),
                                    lease: id.0,
                                    stranded: l.used,
                                    at: now,
                                },
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        if let Some(prev) = regressed {
            self.audit(|| AuditViolation::TimeRegression {
                scope: "coordinator.advance".to_owned(),
                prev,
                next: now,
            });
        }
        events.sort_by_key(|(id, _)| *id);
        let revoked = events.len() as u64;
        if revoked > 0 {
            let tracer = self.tracer();
            for (_, ev) in events {
                match &ev {
                    TraceEvent::LeaseExpired { .. } => {
                        tracer.incr("coordinator.lease_expirations", 1)
                    }
                    _ => tracer.incr("coordinator.forced_revocations", 1),
                }
                trace!(tracer, ev);
            }
        }
        revoked
    }

    /// Records an AQUA-PLACER pairing: `consumer` offloads to `producer`
    /// (and only to it — "AQUA-PLACER matches every consumer GPU with
    /// exactly one producer GPU", §4). Without a pairing, `allocate`
    /// spreads consumers across the least-loaded leases.
    pub fn pair(&self, consumer: GpuRef, producer: GpuRef) {
        let mut st = self.state.lock();
        st.pairings.insert(consumer, producer);
    }

    /// `/allocate`: a consumer asks where to put `bytes` of offloaded
    /// context. Prefers the paired producer's lease (or, unpaired, the
    /// least-loaded same-server lease with room); otherwise DRAM.
    pub fn allocate(&self, consumer: GpuRef, bytes: u64) -> AllocationSite {
        self.tracer().incr("coordinator.allocate", 1);
        let mut st = self.state.lock();
        let paired = st.pairings.get(&consumer).copied();
        let mut candidates: Vec<(&LeaseId, &mut Lease)> = st
            .leases
            .iter_mut()
            .filter(|(_, l)| {
                !l.revoked
                    && !l.reclaiming
                    && l.producer.server == consumer.server
                    && l.producer.gpu != consumer.gpu
                    && l.total - l.used >= bytes
                    && paired.is_none_or(|p| l.producer == p)
            })
            .collect();
        // Deterministic choice: least-loaded lease, ties by id. Spreading
        // keeps unpaired consumers off a single producer's NVLink ports.
        candidates.sort_by_key(|(id, l)| (l.used, **id));
        if let Some((id, lease)) = candidates.into_iter().next() {
            lease.used += bytes;
            AllocationSite::Peer {
                lease: *id,
                gpu: lease.producer,
            }
        } else {
            AllocationSite::Dram
        }
    }

    /// Tries to allocate `bytes` on a *specific* lease (consumer-side lease
    /// affinity: growing context stays with the producer already holding
    /// it, preserving AQUA-PLACER's one-producer-per-consumer pairing).
    /// Returns `true` on success.
    pub fn try_allocate_on(&self, lease: LeaseId, bytes: u64) -> bool {
        let mut st = self.state.lock();
        match st.leases.get_mut(&lease) {
            Some(l) if !l.revoked && !l.reclaiming && l.total - l.used >= bytes => {
                l.used += bytes;
                true
            }
            _ => false,
        }
    }

    /// `/free`: a consumer returns `bytes` previously allocated on `lease`
    /// (after freeing or migrating the tensors away).
    ///
    /// # Errors
    ///
    /// [`AquaError::UnknownLease`] for an id the coordinator never issued,
    /// [`AquaError::LeaseRevoked`] when the lease was revoked (e.g. by
    /// heartbeat expiry) before the free arrived, and [`AquaError::OverFree`]
    /// when `bytes` exceeds the lease's usage — the caller's bytes are
    /// already gone in the first two cases and the third is a double-free.
    pub fn free(&self, lease: LeaseId, bytes: u64) -> Result<(), AquaError> {
        self.tracer().incr("coordinator.free", 1);
        self.free_inner("free", lease, bytes, SimTime::ZERO)
    }

    /// Shared body of [`Coordinator::free`] and [`Coordinator::release`]
    /// with the aqua-audit hooks: an over-free of a live lease is a double
    /// free, and a stale free of more bytes than a revoked lease ever held
    /// means the caller's books were corrupt before the revocation raced it.
    fn free_inner(
        &self,
        verb: &str,
        lease: LeaseId,
        bytes: u64,
        at: SimTime,
    ) -> Result<(), AquaError> {
        let mut violation: Option<AuditViolation> = None;
        let result = {
            let mut st = self.state.lock();
            match st.leases.get_mut(&lease) {
                None => Err(AquaError::UnknownLease(lease)),
                Some(l) if l.revoked => {
                    if bytes > l.used {
                        violation = Some(AuditViolation::FreeAfterRevoke {
                            scope: verb.to_owned(),
                            lease: lease.0,
                            at,
                        });
                    }
                    Err(AquaError::LeaseRevoked(lease))
                }
                Some(l) if l.used < bytes => {
                    violation = Some(AuditViolation::DoubleFree {
                        scope: verb.to_owned(),
                        lease: lease.0,
                        used: l.used,
                        requested: bytes,
                        at,
                    });
                    Err(AquaError::OverFree {
                        lease,
                        used: l.used,
                        requested: bytes,
                    })
                }
                Some(l) => {
                    l.used -= bytes;
                    l.released_at = l.released_at.max(at);
                    Ok(())
                }
            }
        };
        if let Some(v) = violation {
            self.audit(|| v);
        }
        result
    }

    /// `/reclaim_request`: the producer wants its memory back. Marks every
    /// live lease of `producer` as reclaiming; consumers observe it at their
    /// next `respond()` boundary.
    pub fn reclaim_request(&self, producer: GpuRef) {
        self.tracer().incr("coordinator.reclaim_request", 1);
        let mut st = self.state.lock();
        for l in st.leases.values_mut() {
            if l.producer == producer && !l.revoked {
                l.reclaiming = true;
            }
        }
    }

    /// Timestamped `/reclaim_request` that also arms the reclaim deadline
    /// immediately (instead of waiting for the next [`Coordinator::advance`]
    /// sweep to notice the reclaim).
    pub fn reclaim_request_at(&self, producer: GpuRef, now: SimTime) {
        self.tracer().incr("coordinator.reclaim_request", 1);
        let mut st = self.state.lock();
        let deadline = st.failure_config.reclaim_deadline;
        for l in st.leases.values_mut() {
            if l.producer == producer && !l.revoked {
                l.reclaiming = true;
                if let (Some(d), None) = (deadline, l.reclaim_deadline) {
                    l.reclaim_deadline = Some(now + d);
                }
            }
        }
    }

    /// Consumer side of `/respond`: bytes this consumer must migrate off
    /// `lease` right now (its full usage while the lease is reclaiming).
    pub fn pending_reclaim(&self, lease: LeaseId) -> u64 {
        let st = self.state.lock();
        st.leases
            .get(&lease)
            .filter(|l| l.reclaiming)
            .map(|l| l.used)
            .unwrap_or(0)
    }

    /// Consumer notification that `bytes` finished leaving the lease at
    /// simulated time `at`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Coordinator::free`]: unknown lease, revoked lease
    /// (the bytes were already handed back by a forced revocation), or an
    /// over-release.
    pub fn release(&self, lease: LeaseId, bytes: u64, at: SimTime) -> Result<(), AquaError> {
        let tracer = self.tracer();
        tracer.incr("coordinator.release", 1);
        trace!(
            tracer,
            TraceEvent::CoordinatorVerb {
                verb: "release".to_owned(),
                detail: format!("lease={} bytes={bytes}", lease.0),
                at,
            }
        );
        self.free_inner("release", lease, bytes, at)
    }

    /// `/reclaim_status`: the producer polls for completion. When released,
    /// the lease is revoked and its bytes reported back exactly once.
    /// Force-revoked leases also report here once, so a producer whose
    /// consumer got stuck still learns its memory came back.
    pub fn reclaim_status(&self, producer: GpuRef) -> ReclaimStatus {
        let mut st = self.state.lock();
        let any_pending = st
            .leases
            .values()
            .any(|l| l.producer == producer && !l.revoked && l.reclaiming && l.used > 0);
        let mut released_bytes = 0u64;
        let mut released_at = SimTime::ZERO;
        for l in st.leases.values_mut() {
            if l.producer != producer {
                continue;
            }
            if l.revoked {
                // A force-revocation reports exactly once, and only on a
                // poll that actually answers Released.
                if l.pending_report && !any_pending {
                    l.pending_report = false;
                    released_bytes += l.total;
                    released_at = released_at.max(l.released_at);
                }
                continue;
            }
            if !l.reclaiming {
                continue;
            }
            if l.used == 0 {
                l.revoked = true;
                released_bytes += l.total;
                released_at = released_at.max(l.released_at);
            }
        }
        if any_pending {
            ReclaimStatus::Pending
        } else if released_bytes > 0 {
            ReclaimStatus::Released {
                bytes: released_bytes,
                at: released_at,
            }
        } else {
            ReclaimStatus::None
        }
    }

    /// Total bytes currently leased (live leases only).
    pub fn leased_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.leases
            .values()
            .filter(|l| !l.revoked)
            .map(|l| l.total)
            .sum()
    }

    /// Total bytes of leases currently used by consumers.
    pub fn used_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.leases
            .values()
            .filter(|l| !l.revoked)
            .map(|l| l.used)
            .sum()
    }

    /// aqua-audit sweep over the lease books at `at`: every live lease must
    /// keep `used ≤ total` (allocations are bounded by the donation), no
    /// producer may hold two live non-reclaiming leases, and no live lease
    /// may claim a non-current epoch (`double_grant_across_epochs` — a
    /// lease honored in two epochs). Cheap enough to run at every sample
    /// boundary of an audited run.
    pub fn audit_books(&self, at: SimTime) {
        let Some(aud) = self.auditor.lock().clone() else {
            return;
        };
        let mut found: Vec<AuditViolation> = Vec::new();
        {
            let st = self.state.lock();
            let epoch = st.epoch;
            let mut ids: Vec<&LeaseId> = st.leases.keys().collect();
            ids.sort();
            let mut live_producers: Vec<GpuRef> = Vec::new();
            for id in ids {
                let l = &st.leases[id];
                if l.revoked {
                    continue;
                }
                if l.epoch != epoch {
                    found.push(AuditViolation::DoubleGrantAcrossEpochs {
                        producer: l.producer.to_string(),
                        lease: id.0,
                        prior_epoch: l.epoch,
                        epoch,
                    });
                }
                if l.used > l.total {
                    found.push(AuditViolation::ByteConservation {
                        scope: format!("lease:{}", id.0),
                        expected: l.total,
                        actual: l.used,
                        at,
                    });
                }
                if !l.reclaiming {
                    if live_producers.contains(&l.producer) {
                        found.push(AuditViolation::DoubleGrant {
                            producer: l.producer.to_string(),
                            lease: id.0,
                        });
                    }
                    live_producers.push(l.producer);
                }
            }
        }
        for v in found {
            aud.record(v);
        }
    }

    /// Bytes available for new allocations on server `server`.
    pub fn available_on_server(&self, server: usize) -> u64 {
        let st = self.state.lock();
        st.leases
            .values()
            .filter(|l| !l.revoked && !l.reclaiming && l.producer.server == server)
            .map(|l| l.total - l.used)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn refs() -> (GpuRef, GpuRef) {
        (GpuRef::single(GpuId(0)), GpuRef::single(GpuId(1)))
    }

    #[test]
    fn allocate_prefers_peer_then_falls_back() {
        let c = Coordinator::new();
        let (consumer, producer) = refs();
        let lease = c.lease(producer, 10);
        assert!(matches!(
            c.allocate(consumer, 6),
            AllocationSite::Peer { lease: l, .. } if l == lease
        ));
        // Only 4 bytes left: a 6-byte allocation falls back to DRAM.
        assert_eq!(c.allocate(consumer, 6), AllocationSite::Dram);
        assert!(matches!(
            c.allocate(consumer, 4),
            AllocationSite::Peer { .. }
        ));
    }

    #[test]
    fn consumer_never_allocates_on_itself_or_other_servers() {
        let c = Coordinator::new();
        let me = GpuRef::single(GpuId(0));
        c.lease(me, 100);
        assert_eq!(
            c.allocate(me, 10),
            AllocationSite::Dram,
            "self-lease unusable"
        );
        let other_server = GpuRef::new(1, GpuId(1));
        c.lease(other_server, 100);
        assert_eq!(
            c.allocate(me, 10),
            AllocationSite::Dram,
            "cross-server leases are unreachable over NVLink"
        );
    }

    #[test]
    fn lease_extension_merges() {
        let c = Coordinator::new();
        let (_, producer) = refs();
        let a = c.lease(producer, 10);
        let b = c.lease(producer, 5);
        assert_eq!(a, b);
        assert_eq!(c.leased_bytes(), 15);
    }

    #[test]
    fn free_returns_capacity() {
        let c = Coordinator::new();
        let (consumer, producer) = refs();
        let lease = c.lease(producer, 10);
        c.allocate(consumer, 10);
        assert_eq!(c.allocate(consumer, 1), AllocationSite::Dram);
        c.free(lease, 10).unwrap();
        assert!(matches!(
            c.allocate(consumer, 1),
            AllocationSite::Peer { .. }
        ));
    }

    #[test]
    fn reclaim_protocol_round_trip() {
        let c = Coordinator::new();
        let (consumer, producer) = refs();
        let lease = c.lease(producer, 100);
        c.allocate(consumer, 60);
        assert_eq!(c.reclaim_status(producer), ReclaimStatus::None);

        c.reclaim_request(producer);
        assert_eq!(c.pending_reclaim(lease), 60);
        assert_eq!(c.reclaim_status(producer), ReclaimStatus::Pending);
        // A reclaiming lease takes no new allocations.
        assert_eq!(c.allocate(consumer, 1), AllocationSite::Dram);

        let at = SimTime::from_secs(42);
        c.release(lease, 60, at).unwrap();
        assert_eq!(
            c.reclaim_status(producer),
            ReclaimStatus::Released { bytes: 100, at }
        );
        // Reported exactly once.
        assert_eq!(c.reclaim_status(producer), ReclaimStatus::None);
        assert_eq!(c.leased_bytes(), 0);
    }

    #[test]
    fn reclaim_of_unused_lease_is_immediate() {
        let c = Coordinator::new();
        let (_, producer) = refs();
        c.lease(producer, 50);
        c.reclaim_request(producer);
        assert!(matches!(
            c.reclaim_status(producer),
            ReclaimStatus::Released { bytes: 50, .. }
        ));
    }

    #[test]
    fn verbs_feed_the_counter_registry() {
        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        let (consumer, producer) = refs();
        let lease = c.lease(producer, 100);
        c.allocate(consumer, 60);
        c.reclaim_request(producer);
        c.release(lease, 60, SimTime::from_secs(1)).unwrap();
        let reg = journal.registry();
        assert_eq!(reg.counter("coordinator.lease"), 1);
        assert_eq!(reg.counter("coordinator.allocate"), 1);
        assert_eq!(reg.counter("coordinator.reclaim_request"), 1);
        assert_eq!(reg.counter("coordinator.release"), 1);
        // release is the one verb that carries simulated time, so it also
        // lands in the journal.
        assert_eq!(journal.len(), 1);
    }

    #[test]
    fn free_errors_instead_of_panicking() {
        use crate::error::AquaError;

        let c = Coordinator::new();
        assert_eq!(
            c.free(LeaseId(9), 1),
            Err(AquaError::UnknownLease(LeaseId(9)))
        );
        let (consumer, producer) = refs();
        let lease = c.lease(producer, 10);
        c.allocate(consumer, 4);
        assert_eq!(
            c.free(lease, 5),
            Err(AquaError::OverFree {
                lease,
                used: 4,
                requested: 5
            })
        );
        assert_eq!(c.used_bytes(), 4, "failed free must not change state");
        assert_eq!(
            c.release(LeaseId(9), 1, SimTime::ZERO),
            Err(AquaError::UnknownLease(LeaseId(9)))
        );
    }

    #[test]
    fn available_on_server_accounts_usage() {
        let c = Coordinator::new();
        let (consumer, producer) = refs();
        c.lease(producer, 100);
        assert_eq!(c.available_on_server(0), 100);
        c.allocate(consumer, 30);
        assert_eq!(c.available_on_server(0), 70);
        assert_eq!(c.available_on_server(1), 0);
        assert_eq!(c.used_bytes(), 30);
    }

    #[test]
    fn pairing_restricts_allocation_target() {
        let c = Coordinator::new();
        let consumer = GpuRef::single(GpuId(0));
        let p1 = GpuRef::single(GpuId(1));
        let p2 = GpuRef::single(GpuId(2));
        c.lease(p1, 100);
        c.lease(p2, 100);
        c.pair(consumer, p2);
        match c.allocate(consumer, 10) {
            AllocationSite::Peer { gpu, .. } => assert_eq!(gpu, p2),
            AllocationSite::Dram => panic!("paired lease had room"),
        }
        // Paired lease exhausted: DRAM, never the other producer.
        c.allocate(consumer, 90);
        assert_eq!(c.allocate(consumer, 10), AllocationSite::Dram);
    }

    #[test]
    fn unpaired_allocation_spreads_by_load() {
        let c = Coordinator::new();
        let consumer = GpuRef::single(GpuId(0));
        c.lease(GpuRef::single(GpuId(1)), 100);
        c.lease(GpuRef::single(GpuId(2)), 100);
        let first = match c.allocate(consumer, 40) {
            AllocationSite::Peer { gpu, .. } => gpu,
            _ => panic!(),
        };
        let second = match c.allocate(consumer, 40) {
            AllocationSite::Peer { gpu, .. } => gpu,
            _ => panic!(),
        };
        assert_ne!(first, second, "least-loaded lease wins");
    }

    #[test]
    fn coordinator_is_thread_safe() {
        let c = Arc::new(Coordinator::new());
        let producer = GpuRef::single(GpuId(1));
        c.lease(producer, 1_000_000);
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let consumer = GpuRef::single(GpuId(0));
                let mut peer = 0u64;
                for _ in 0..100 {
                    if let AllocationSite::Peer { lease, .. } = c.allocate(consumer, 100) {
                        peer += 100;
                        c.free(lease, 100).unwrap();
                    }
                }
                let _ = t;
                peer
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(c.used_bytes(), 0, "all allocations returned");
        assert_eq!(c.leased_bytes(), 1_000_000);
    }

    #[test]
    fn heartbeat_expiry_revokes_and_journals() {
        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        c.set_failure_config(FailureConfig::chaos());
        let (consumer, producer) = refs();
        let lease = c.lease(producer, 100);
        c.allocate(consumer, 40);

        // First sweep arms the watchdog; nothing expires yet.
        assert_eq!(c.advance(SimTime::from_secs(1)), 0);
        c.heartbeat(producer, SimTime::from_secs(5));
        assert_eq!(c.advance(SimTime::from_secs(10)), 0, "5s silence < 10s TTL");
        // 20s of silence blows the TTL.
        assert_eq!(c.advance(SimTime::from_secs(25)), 1);
        assert_eq!(c.lease_state(lease), LeaseState::Revoked);
        assert_eq!(c.leased_bytes(), 0);
        assert_eq!(c.live_lease_bytes(producer), 0);
        assert!(!c.try_allocate_on(lease, 1), "revoked lease takes nothing");
        // A dead producer gets no Released report.
        assert_eq!(c.reclaim_status(producer), ReclaimStatus::None);
        assert_eq!(
            journal.registry().counter("coordinator.lease_expirations"),
            1
        );
        assert!(journal
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::LeaseExpired { stranded: 40, .. })));
        // Idempotent: a later sweep does not double-revoke.
        assert_eq!(c.advance(SimTime::from_secs(40)), 0);
    }

    #[test]
    fn reclaim_deadline_force_revokes_and_still_reports() {
        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        c.set_failure_config(FailureConfig {
            heartbeat_ttl: None,
            reclaim_deadline: Some(SimDuration::from_secs(60)),
        });
        let (consumer, producer) = refs();
        let lease = c.lease(producer, 100);
        c.allocate(consumer, 70);
        c.reclaim_request_at(producer, SimTime::from_secs(10));
        assert_eq!(c.lease_state(lease), LeaseState::Reclaiming);
        assert_eq!(c.reclaim_status(producer), ReclaimStatus::Pending);

        // Consumer never finishes releasing; the deadline fires at t=70.
        assert_eq!(c.advance(SimTime::from_secs(69)), 0);
        assert_eq!(c.advance(SimTime::from_secs(70)), 1);
        assert_eq!(c.lease_state(lease), LeaseState::Revoked);
        // The producer still learns its memory came back — exactly once.
        assert!(matches!(
            c.reclaim_status(producer),
            ReclaimStatus::Released { bytes: 100, .. }
        ));
        assert_eq!(c.reclaim_status(producer), ReclaimStatus::None);
        assert_eq!(
            journal.registry().counter("coordinator.forced_revocations"),
            1
        );
        // A release arriving after the revocation is an error, not a panic.
        assert_eq!(
            c.release(lease, 70, SimTime::from_secs(80)),
            Err(crate::error::AquaError::LeaseRevoked(lease))
        );
    }

    #[test]
    fn advance_is_a_noop_without_failure_config() {
        let c = Coordinator::new();
        let (consumer, producer) = refs();
        c.lease(producer, 100);
        c.allocate(consumer, 40);
        c.reclaim_request(producer);
        assert_eq!(c.advance(SimTime::from_secs(1_000_000)), 0);
        assert_eq!(c.leased_bytes(), 100);
    }

    #[test]
    fn lease_state_tracks_the_lifecycle() {
        let c = Coordinator::new();
        let (_, producer) = refs();
        assert_eq!(c.lease_state(LeaseId(0)), LeaseState::Unknown);
        let lease = c.lease(producer, 10);
        assert_eq!(c.lease_state(lease), LeaseState::Live);
        c.reclaim_request(producer);
        assert_eq!(c.lease_state(lease), LeaseState::Reclaiming);
        c.reclaim_status(producer); // drained -> revoked
        assert_eq!(c.lease_state(lease), LeaseState::Revoked);
    }

    #[test]
    fn crash_wipes_book_bumps_epoch_and_journals() {
        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        let (consumer, producer) = refs();
        assert_eq!(c.epoch(), 1);
        let (epoch, lease) = c.grant(producer, 100);
        assert_eq!(epoch, 1);
        c.allocate(consumer, 40);

        c.crash(SimTime::from_secs(10));
        assert!(c.is_down());
        assert_eq!(c.epoch(), 2);
        assert_eq!(c.leased_bytes(), 0, "book wiped");
        assert_eq!(c.lease_state(lease), LeaseState::Unknown);
        // Idempotent while down: no second bump.
        c.crash(SimTime::from_secs(11));
        assert_eq!(c.epoch(), 2);

        c.recover(SimTime::from_secs(12));
        assert!(!c.is_down());
        let (recovered, regrant) = c.recovery_metrics();
        assert_eq!(recovered, Some(SimTime::from_secs(12)));
        assert_eq!(regrant, None);
        // Resync repopulates the book in the new epoch and stamps the
        // first-regrant metric.
        let id = c
            .resync_report(producer, 100, c.epoch(), SimTime::from_secs(13))
            .unwrap();
        assert_ne!(id, lease, "lease ids never repeat across epochs");
        assert_eq!(c.leased_bytes(), 100);
        assert_eq!(
            c.recovery_metrics().1,
            Some(SimTime::from_secs(13)),
            "time-to-first-regrant"
        );
        let names: Vec<&str> = journal.events().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "coordinator_crashed",
                "epoch_bumped",
                "coordinator_recovered"
            ]
        );
        assert!(journal.events().iter().any(|e| matches!(
            e,
            TraceEvent::CoordinatorCrashed {
                epoch: 1,
                lost_leases: 1,
                lost_bytes: 100,
                ..
            }
        )));
        assert_eq!(journal.registry().counter("coordinator.crashes"), 1);
        assert_eq!(journal.registry().counter("coordinator.recoveries"), 1);
    }

    #[test]
    fn fenced_verbs_reject_stale_epochs() {
        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        let (consumer, producer) = refs();
        let (old_epoch, old_lease) = c.grant(producer, 100);
        c.allocate(consumer, 40);
        assert!(c
            .heartbeat_fenced(producer, SimTime::from_secs(1), old_epoch)
            .is_ok());
        c.crash(SimTime::from_secs(2));
        // Down: fenced verbs answer ServiceUnavailable, not StaleEpoch.
        assert_eq!(
            c.heartbeat_fenced(producer, SimTime::from_secs(3), old_epoch),
            Err(AquaError::ServiceUnavailable)
        );
        c.recover(SimTime::from_secs(4));
        assert_eq!(
            c.heartbeat_fenced(producer, SimTime::from_secs(5), old_epoch),
            Err(AquaError::StaleEpoch {
                held: 1,
                current: 2
            })
        );
        assert_eq!(
            c.free_fenced(old_lease, 40, old_epoch, SimTime::from_secs(6)),
            Err(AquaError::StaleEpoch {
                held: 1,
                current: 2
            })
        );
        assert_eq!(c.used_bytes(), 0, "stale verbs mutated nothing");
        // Current-epoch verbs pass the fence.
        let id = c
            .resync_report(producer, 100, 2, SimTime::from_secs(7))
            .unwrap();
        assert!(c.try_allocate_on(id, 10));
        assert!(c.free_fenced(id, 10, 2, SimTime::from_secs(8)).is_ok());
        // Writes are fenced structurally: the pre-crash lease is gone.
        assert!(!c.try_allocate_on(old_lease, 1));
        let rejections = journal
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::StaleEpochRejected { .. }))
            .count();
        assert_eq!(rejections, 2);
        assert_eq!(
            journal
                .registry()
                .counter("coordinator.stale_epoch_rejections"),
            2
        );
    }

    /// Satellite regression: a resync report prepared against epoch N that
    /// races a *second* crash (epoch bumped to N+1 mid-resync) must be
    /// discarded by the fence, never merged into the rebuilt book.
    #[test]
    fn resync_racing_second_crash_is_fenced_out() {
        let c = Coordinator::new();
        let (_, producer) = refs();
        c.grant(producer, 100);
        c.crash(SimTime::from_secs(1));
        c.recover(SimTime::from_secs(2));
        // The informer observes epoch 2 and prepares its report…
        let observed = c.epoch();
        assert_eq!(observed, 2);
        // …but a second crash lands before the report does.
        c.crash(SimTime::from_secs(3));
        c.recover(SimTime::from_secs(4));
        assert_eq!(
            c.resync_report(producer, 100, observed, SimTime::from_secs(5)),
            Err(AquaError::StaleEpoch {
                held: 2,
                current: 3
            })
        );
        assert_eq!(c.leased_bytes(), 0, "stale report must not be merged");
        // A report against the current epoch lands.
        assert!(c
            .resync_report(producer, 100, 3, SimTime::from_secs(6))
            .is_ok());
        assert_eq!(c.leased_bytes(), 100);
    }

    /// The planted-bug shape: bypassing the fence with a direct
    /// `merge_resync` of a stale report must be caught by the audit as
    /// `stale_epoch_accepted` plus `double_grant_across_epochs`, both at
    /// merge time and by the next `audit_books` sweep.
    #[test]
    fn unfenced_stale_merge_is_caught_by_the_audit() {
        use aqua_sim::audit::Auditor;

        let aud = Auditor::collecting();
        let c = Coordinator::new();
        c.set_auditor(aud.clone());
        let (_, producer) = refs();
        let (stale_epoch, _) = c.grant(producer, 100);
        c.crash(SimTime::from_secs(1));
        c.recover(SimTime::from_secs(2));
        // Legitimate resync in the new epoch…
        c.resync_report(producer, 100, 2, SimTime::from_secs(3))
            .unwrap();
        assert!(aud.is_clean());
        // …then the bypass merges the stale report anyway.
        c.merge_resync(producer, 80, stale_epoch, SimTime::from_secs(4));
        let kinds: Vec<&str> = aud.violations().iter().map(|v| v.kind()).collect();
        assert!(kinds.contains(&"stale_epoch_accepted"), "{kinds:?}");
        assert!(kinds.contains(&"double_grant_across_epochs"), "{kinds:?}");
        // The standing sweep keeps flagging the cross-epoch lease.
        let before = aud.violations().len();
        c.audit_books(SimTime::from_secs(5));
        assert!(aud
            .violations()
            .iter()
            .skip(before)
            .any(|v| v.kind() == "double_grant_across_epochs"));
    }

    /// Satellite pin: one sweep that revokes several leases emits events in
    /// lease-id order regardless of hash-map insertion order, and per lease
    /// the heartbeat TTL is checked before the reclaim deadline (a dead
    /// producer journals `lease_expired`, never `lease_force_revoked`).
    #[test]
    fn advance_sweep_order_is_ttl_first_then_lease_id() {
        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        c.set_failure_config(FailureConfig::chaos());
        let consumer = GpuRef::single(GpuId(0));
        let p0 = GpuRef::single(GpuId(1));
        let p1 = GpuRef::single(GpuId(2));
        let p2 = GpuRef::single(GpuId(3));
        let l0 = c.lease(p0, 100);
        let l1 = c.lease(p1, 100);
        let l2 = c.lease(p2, 100);
        assert!((l0, l1, l2) == (LeaseId(0), LeaseId(1), LeaseId(2)));
        c.pair(consumer, p0);
        c.allocate(consumer, 10);
        c.pair(consumer, p1);
        c.allocate(consumer, 10);
        c.pair(consumer, p2);
        c.allocate(consumer, 10);
        // Arm all watchdogs at t=0.
        c.advance(SimTime::ZERO);
        // Lease 0: producer stays alive but its reclaim blows the deadline.
        c.reclaim_request_at(p0, SimTime::from_secs(1));
        // Lease 1: reclaiming AND dead producer — TTL must win.
        c.reclaim_request_at(p1, SimTime::from_secs(1));
        c.heartbeat(p0, SimTime::from_secs(95));
        // Lease 2: dead producer, no reclaim.
        assert_eq!(c.advance(SimTime::from_secs(100)), 3);
        let events: Vec<(&str, u64)> = journal
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::LeaseExpired { lease, .. } => Some(("lease_expired", *lease)),
                TraceEvent::LeaseForceRevoked { lease, .. } => {
                    Some(("lease_force_revoked", *lease))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            events,
            vec![
                ("lease_force_revoked", 0),
                ("lease_expired", 1),
                ("lease_expired", 2),
            ]
        );
    }

    #[test]
    fn rehome_places_bytes_back_on_the_new_epoch_lease() {
        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        let (consumer, producer) = refs();
        c.grant(producer, 100);
        c.allocate(consumer, 30);
        c.crash(SimTime::from_secs(1));
        // Down, and before the producer resyncs: nothing to re-home onto.
        assert_eq!(c.rehome(producer, 30, SimTime::from_secs(2)), None);
        c.recover(SimTime::from_secs(2));
        assert_eq!(c.rehome(producer, 30, SimTime::from_secs(3)), None);
        let id = c
            .resync_report(producer, 100, 2, SimTime::from_secs(4))
            .unwrap();
        let (epoch, lease) = c.rehome(producer, 30, SimTime::from_secs(5)).unwrap();
        assert_eq!((epoch, lease), (2, id));
        assert_eq!(c.used_bytes(), 30, "orphaned bytes re-homed");
        // Too big to fit does not re-home.
        assert_eq!(c.rehome(producer, 80, SimTime::from_secs(6)), None);
        assert!(journal.events().iter().any(|e| matches!(
            e,
            TraceEvent::LeaseReconciled {
                bytes: 30,
                epoch: 2,
                ..
            }
        )));
    }

    #[test]
    fn advance_applies_fault_plan_windows_exactly_once() {
        use aqua_sim::fault::FaultPlan;

        let journal = Arc::new(aqua_telemetry::JournalTracer::new());
        let c = Coordinator::new();
        c.set_tracer(journal.clone());
        let (_, producer) = refs();
        c.grant(producer, 100);
        let plan = Arc::new(
            FaultPlan::new()
                .coordinator_crash(SimTime::from_secs(10), SimDuration::from_secs(5))
                .partition(1, SimTime::from_secs(30), SimTime::from_secs(40)),
        );
        c.set_fault_plan(Arc::clone(&plan));
        // Reachability is a pure function of the plan.
        assert!(c.reachable(GpuId(0), SimTime::from_secs(5)));
        assert!(!c.reachable(GpuId(0), SimTime::from_secs(12)));
        assert!(c.reachable(GpuId(0), SimTime::from_secs(35)));
        assert!(!c.reachable(GpuId(1), SimTime::from_secs(35)));

        c.advance(SimTime::from_secs(12));
        assert!(c.is_down());
        assert_eq!(c.epoch(), 2);
        c.advance(SimTime::from_secs(12));
        assert_eq!(c.epoch(), 2, "boundaries apply exactly once");
        c.advance(SimTime::from_secs(20));
        assert!(!c.is_down());
        assert_eq!(c.recovery_metrics().0, Some(SimTime::from_secs(15)));
        // A late first sweep applies both edges, in boundary-time order.
        c.advance(SimTime::from_secs(50));
        let names: Vec<&str> = journal.events().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "coordinator_crashed",
                "epoch_bumped",
                "coordinator_recovered",
                "partition_started",
                "partition_healed",
            ]
        );
        assert_eq!(journal.registry().counter("coordinator.partitions"), 1);
        assert_eq!(
            journal.registry().counter("coordinator.partitions_healed"),
            1
        );
    }

    proptest::proptest! {
        /// Satellite: arbitrary interleavings of grant / allocate / fenced
        /// free / fenced heartbeat / crash / recover / resync+re-home never
        /// honor a lease in two epochs, every stale fenced verb is rejected
        /// with `StaleEpoch`, and the outcome accounting holds: every
        /// consumer region orphaned by a crash ends exactly one of
        /// reconciled (re-homed), locally revoked (dropped to DRAM), or is
        /// still awaiting reconciliation when the run ends.
        #[test]
        fn epoch_fencing_interleavings_never_honor_a_lease_across_epochs(
            ops in proptest::collection::vec((0u8..8, 1u64..64), 1..100)
        ) {
            let c = Coordinator::new();
            let (consumer, producer) = refs();
            let mut now = SimTime::ZERO;
            // Consumer regions as (lease, bytes, epoch granted in).
            let mut held: Vec<(LeaseId, u64, u64)> = Vec::new();
            // Every (lease id, epoch) pair ever granted.
            let mut granted: Vec<(LeaseId, u64)> = Vec::new();
            let mut crossings = 0usize; // regions orphaned by a crash
            let mut reconciled = 0usize;
            let mut locally_revoked = 0usize;
            for (op, amount) in ops {
                now += SimDuration::from_secs(1);
                match op {
                    0 => {
                        if !c.is_down() {
                            let (e, id) = c.grant(producer, amount * 10);
                            if !granted.contains(&(id, e)) {
                                granted.push((id, e));
                            }
                        }
                    }
                    1 => {
                        if !c.is_down() {
                            let e = c.epoch();
                            if let AllocationSite::Peer { lease, .. } =
                                c.allocate(consumer, amount)
                            {
                                held.push((lease, amount, e));
                            }
                        }
                    }
                    2 => {
                        if let Some((lease, bytes, e)) = held.pop() {
                            match c.free_fenced(lease, bytes, e, now) {
                                Ok(()) => {} // released cleanly
                                Err(AquaError::ServiceUnavailable) => {
                                    held.push((lease, bytes, e)); // retry later
                                }
                                Err(AquaError::StaleEpoch { held: h, current }) => {
                                    proptest::prop_assert!(h == e && current == c.epoch());
                                    // Fenced out: the caller drops to DRAM.
                                    locally_revoked += 1;
                                }
                                Err(e) => panic!("unexpected free error: {e}"),
                            }
                        }
                    }
                    3 => {
                        let r = c.heartbeat_fenced(producer, now, c.epoch());
                        if !c.is_down() {
                            proptest::prop_assert!(r.is_ok());
                        }
                    }
                    4 => {
                        if !c.is_down() {
                            let e = c.epoch();
                            crossings += held.iter().filter(|(_, _, ge)| *ge == e).count();
                            c.crash(now);
                        }
                    }
                    5 => c.recover(now),
                    6 => {
                        // Reconciliation pass: resync the producer, then
                        // re-home every orphaned region.
                        if !c.is_down() {
                            let e = c.epoch();
                            let _ = c.resync_report(producer, 1 << 20, e, now);
                            for r in held.iter_mut() {
                                if r.2 == e {
                                    continue;
                                }
                                match c.rehome(producer, r.1, now) {
                                    Some((ne, nl)) => {
                                        *r = (nl, r.1, ne);
                                        reconciled += 1;
                                    }
                                    None => {
                                        r.1 = 0; // dropped to DRAM below
                                        locally_revoked += 1;
                                    }
                                }
                            }
                            held.retain(|(_, b, _)| *b > 0);
                        }
                    }
                    _ => {
                        // A stale fenced free must always bounce, leaving
                        // the book untouched.
                        if let Some(&(lease, bytes, e)) = held.first() {
                            if e != c.epoch() && !c.is_down() {
                                let before = c.used_bytes();
                                proptest::prop_assert!(matches!(
                                    c.free_fenced(lease, bytes, e, now),
                                    Err(AquaError::StaleEpoch { .. })
                                ));
                                proptest::prop_assert_eq!(c.used_bytes(), before);
                            }
                        }
                    }
                }
                // No lease is ever honored in two epochs: once the epoch
                // moved on, a grant from an older epoch is gone from the
                // book entirely.
                for &(id, e) in &granted {
                    if e != c.epoch() {
                        proptest::prop_assert_eq!(c.lease_state(id), LeaseState::Unknown);
                        proptest::prop_assert!(!c.try_allocate_on(id, 1));
                    }
                }
                // Byte conservation across the crash boundary: the book's
                // usage is exactly the current-epoch regions.
                let model: u64 = held
                    .iter()
                    .filter(|(_, _, e)| *e == c.epoch())
                    .map(|(_, b, _)| *b)
                    .sum();
                proptest::prop_assert_eq!(c.used_bytes(), model);
            }
            // Outcome accounting: every orphaned region was resolved
            // exactly once (or is still pending at shutdown).
            let pending = held
                .iter()
                .filter(|(_, _, e)| *e != c.epoch())
                .count();
            proptest::prop_assert_eq!(crossings, reconciled + locally_revoked + pending);
        }
    }

    proptest::proptest! {
        /// Random interleavings of the lease lifecycle: bytes are conserved
        /// (coordinator usage always equals the model's outstanding bytes),
        /// double frees error instead of corrupting state, and revoked
        /// leases accept no allocations.
        #[test]
        fn lease_lifecycle_invariants(
            ops in proptest::collection::vec((0u8..7, 1u64..64), 1..80)
        ) {
            let c = Coordinator::new();
            c.set_failure_config(FailureConfig {
                heartbeat_ttl: None, // no heartbeats in this model: TTL off
                reclaim_deadline: Some(SimDuration::from_secs(5)),
            });
            let (consumer, producer) = refs();
            let mut now = SimTime::ZERO;
            // Model: outstanding (lease, bytes) pairs held by the consumer.
            let mut held: Vec<(LeaseId, u64)> = Vec::new();
            for (op, amount) in ops {
                now += SimDuration::from_secs(1);
                match op {
                    0 => {
                        c.lease(producer, amount * 10);
                    }
                    1 => {
                        if let AllocationSite::Peer { lease, .. } = c.allocate(consumer, amount) {
                            held.push((lease, amount));
                        }
                    }
                    2 => {
                        if let Some((lease, bytes)) = held.pop() {
                            match c.free(lease, bytes) {
                                Ok(()) => {}
                                // A revocation beat us to it; bytes are gone.
                                Err(AquaError::LeaseRevoked(_)) => {}
                                Err(e) => panic!("unexpected free error: {e}"),
                            }
                            // Freeing more than is in use must always be
                            // rejected without touching state (double-free
                            // protection).
                            proptest::prop_assert!(c.free(lease, u64::MAX).is_err());
                        }
                    }
                    3 => c.reclaim_request_at(producer, now),
                    4 => {
                        if let Some((lease, bytes)) = held.pop() {
                            match c.release(lease, bytes, now) {
                                Ok(()) | Err(AquaError::LeaseRevoked(_)) => {}
                                Err(e) => panic!("unexpected release error: {e}"),
                            }
                        }
                    }
                    5 => {
                        now += SimDuration::from_secs(6);
                        c.advance(now);
                        // Anything stranded in a force-revoked lease is gone
                        // from the consumer's point of view too.
                        held.retain(|(l, _)| c.lease_state(*l) != LeaseState::Revoked);
                    }
                    _ => {
                        let _ = c.reclaim_status(producer);
                        held.retain(|(l, _)| c.lease_state(*l) != LeaseState::Revoked);
                    }
                }
                // Conservation: live usage equals what the model still holds
                // on non-revoked leases.
                let model: u64 = held
                    .iter()
                    .filter(|(l, _)| c.lease_state(*l) != LeaseState::Revoked)
                    .map(|(_, b)| *b)
                    .sum();
                proptest::prop_assert_eq!(c.used_bytes(), model);
                // Revoked leases accept nothing.
                for (l, _) in &held {
                    if c.lease_state(*l) == LeaseState::Revoked {
                        proptest::prop_assert!(!c.try_allocate_on(*l, 1));
                    }
                }
            }
        }
    }
}
