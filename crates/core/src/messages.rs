//! Serialisable control-plane messages mirroring the coordinator's REST API.
//!
//! The paper's coordinator "exposes a set of REST endpoints" (§3): `/lease`,
//! `/allocate`, `/free`, `/respond`, `/reclaim_request`, `/reclaim_status`.
//! In-process we call typed methods, but the envelope below keeps the wire
//! surface explicit — [`Coordinator::handle`](crate::coordinator::Coordinator)
//! dispatch lives here — and serde keeps every message serialisable, so a
//! real HTTP front-end would be a thin shim.

use crate::coordinator::{AllocationSite, Coordinator, GpuRef, LeaseId, ReclaimStatus};
use aqua_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A request to the coordinator (one REST endpoint each).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "endpoint", rename_all = "snake_case")]
pub enum CoordinatorRequest {
    /// `POST /lease` — a producer donates memory.
    Lease {
        /// Donating producer GPU.
        producer: GpuRef,
        /// Bytes donated.
        bytes: u64,
    },
    /// `POST /allocate` — a consumer requests offload space.
    Allocate {
        /// Requesting consumer GPU.
        consumer: GpuRef,
        /// Bytes requested.
        bytes: u64,
    },
    /// `POST /free` — a consumer returns lease capacity.
    Free {
        /// Lease being returned to.
        lease: LeaseId,
        /// Bytes returned.
        bytes: u64,
    },
    /// `POST /reclaim_request` — a producer wants its memory back.
    ReclaimRequest {
        /// Reclaiming producer GPU.
        producer: GpuRef,
    },
    /// `GET /reclaim_status` — a producer polls reclaim progress.
    ReclaimStatusQuery {
        /// Polling producer GPU.
        producer: GpuRef,
    },
    /// `POST /respond` — a consumer asks, at an iteration boundary, whether
    /// tensors on `lease` must move.
    Respond {
        /// Lease the consumer holds bytes on.
        lease: LeaseId,
    },
    /// Consumer notification that bytes finished leaving a lease.
    Release {
        /// The lease released from.
        lease: LeaseId,
        /// Bytes released.
        bytes: u64,
        /// Simulated completion time of the migration.
        at: SimTime,
    },
    /// `POST /heartbeat` — a producer proves liveness, presenting the
    /// epoch it believes is current (fenced after a coordinator crash).
    Heartbeat {
        /// Producer proving liveness.
        producer: GpuRef,
        /// Simulated send time.
        at: SimTime,
        /// The fencing epoch the producer holds.
        epoch: u64,
    },
    /// `POST /resync` — a producer re-registers its full donated inventory
    /// after a coordinator crash bumped the epoch.
    ResyncReport {
        /// Producer re-registering.
        producer: GpuRef,
        /// Full donated inventory in bytes.
        bytes: u64,
        /// The epoch the report was prepared against.
        epoch: u64,
        /// Simulated send time.
        at: SimTime,
    },
    /// `GET /epoch` — any party asks which fencing epoch is current.
    EpochQuery,
}

/// A coordinator response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum CoordinatorResponse {
    /// Response to `Lease`.
    Leased {
        /// Id of the (possibly merged) lease.
        lease: LeaseId,
    },
    /// Response to `Allocate`.
    Allocated {
        /// Where the bytes were placed.
        site: AllocationSite,
    },
    /// Response to `ReclaimStatusQuery`.
    Reclaim {
        /// Current status.
        status: ReclaimStatus,
    },
    /// Response to `Respond`: bytes that must migrate off the lease now.
    MustMigrate {
        /// Bytes to move (0 when no reclaim is pending).
        bytes: u64,
    },
    /// Response to `ResyncReport`: the (re-granted) lease plus the epoch
    /// it now belongs to.
    Resynced {
        /// The fencing epoch in force.
        epoch: u64,
        /// The lease the inventory was merged into.
        lease: LeaseId,
    },
    /// Response to `EpochQuery`.
    Epoch {
        /// The fencing epoch in force.
        epoch: u64,
    },
    /// Generic acknowledgement (`Free`, `ReclaimRequest`, `Release`,
    /// `Heartbeat`).
    Ack,
    /// The verb failed on the coordinator side (HTTP 4xx/5xx equivalent).
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// Dispatches a request envelope onto a coordinator — the REST shim.
pub fn handle(coord: &Coordinator, req: CoordinatorRequest) -> CoordinatorResponse {
    match req {
        CoordinatorRequest::Lease { producer, bytes } => CoordinatorResponse::Leased {
            lease: coord.lease(producer, bytes),
        },
        CoordinatorRequest::Allocate { consumer, bytes } => CoordinatorResponse::Allocated {
            site: coord.allocate(consumer, bytes),
        },
        CoordinatorRequest::Free { lease, bytes } => match coord.free(lease, bytes) {
            Ok(()) => CoordinatorResponse::Ack,
            Err(e) => CoordinatorResponse::Error {
                message: e.to_string(),
            },
        },
        CoordinatorRequest::ReclaimRequest { producer } => {
            coord.reclaim_request(producer);
            CoordinatorResponse::Ack
        }
        CoordinatorRequest::ReclaimStatusQuery { producer } => CoordinatorResponse::Reclaim {
            status: coord.reclaim_status(producer),
        },
        CoordinatorRequest::Respond { lease } => CoordinatorResponse::MustMigrate {
            bytes: coord.pending_reclaim(lease),
        },
        CoordinatorRequest::Release { lease, bytes, at } => match coord.release(lease, bytes, at) {
            Ok(()) => CoordinatorResponse::Ack,
            Err(e) => CoordinatorResponse::Error {
                message: e.to_string(),
            },
        },
        CoordinatorRequest::Heartbeat {
            producer,
            at,
            epoch,
        } => match coord.heartbeat_fenced(producer, at, epoch) {
            Ok(()) => CoordinatorResponse::Ack,
            Err(e) => CoordinatorResponse::Error {
                message: e.to_string(),
            },
        },
        CoordinatorRequest::ResyncReport {
            producer,
            bytes,
            epoch,
            at,
        } => match coord.resync_report(producer, bytes, epoch, at) {
            Ok(lease) => CoordinatorResponse::Resynced {
                epoch: coord.epoch(),
                lease,
            },
            Err(e) => CoordinatorResponse::Error {
                message: e.to_string(),
            },
        },
        CoordinatorRequest::EpochQuery => CoordinatorResponse::Epoch {
            epoch: coord.epoch(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::gpu::GpuId;

    #[test]
    fn full_protocol_through_the_envelope() {
        let coord = Coordinator::new();
        let producer = GpuRef::single(GpuId(1));
        let consumer = GpuRef::single(GpuId(0));

        let lease = match handle(
            &coord,
            CoordinatorRequest::Lease {
                producer,
                bytes: 100,
            },
        ) {
            CoordinatorResponse::Leased { lease } => lease,
            other => panic!("unexpected {other:?}"),
        };
        let site = match handle(
            &coord,
            CoordinatorRequest::Allocate {
                consumer,
                bytes: 60,
            },
        ) {
            CoordinatorResponse::Allocated { site } => site,
            other => panic!("unexpected {other:?}"),
        };
        assert!(matches!(site, AllocationSite::Peer { .. }));

        assert_eq!(
            handle(&coord, CoordinatorRequest::ReclaimRequest { producer }),
            CoordinatorResponse::Ack
        );
        assert_eq!(
            handle(&coord, CoordinatorRequest::Respond { lease }),
            CoordinatorResponse::MustMigrate { bytes: 60 }
        );
        handle(
            &coord,
            CoordinatorRequest::Release {
                lease,
                bytes: 60,
                at: SimTime::from_secs(3),
            },
        );
        match handle(&coord, CoordinatorRequest::ReclaimStatusQuery { producer }) {
            CoordinatorResponse::Reclaim {
                status: ReclaimStatus::Released { bytes, at },
            } => {
                assert_eq!(bytes, 100);
                assert_eq!(at, SimTime::from_secs(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_plane_errors_cross_the_envelope() {
        let coord = Coordinator::new();
        match handle(
            &coord,
            CoordinatorRequest::Free {
                lease: LeaseId(99),
                bytes: 1,
            },
        ) {
            CoordinatorResponse::Error { message } => {
                assert!(message.contains("unknown lease"), "{message}")
            }
            other => panic!("expected an error response, got {other:?}"),
        }
    }

    #[test]
    fn epoch_fencing_crosses_the_envelope() {
        let coord = Coordinator::new();
        let producer = GpuRef::single(GpuId(1));
        assert_eq!(
            handle(&coord, CoordinatorRequest::EpochQuery),
            CoordinatorResponse::Epoch { epoch: 1 }
        );
        handle(
            &coord,
            CoordinatorRequest::Lease {
                producer,
                bytes: 100,
            },
        );
        coord.crash(SimTime::from_secs(1));
        coord.recover(SimTime::from_secs(2));
        // A heartbeat carrying the pre-crash epoch bounces off the fence.
        match handle(
            &coord,
            CoordinatorRequest::Heartbeat {
                producer,
                at: SimTime::from_secs(3),
                epoch: 1,
            },
        ) {
            CoordinatorResponse::Error { message } => {
                assert!(message.contains("stale epoch"), "{message}")
            }
            other => panic!("expected a fencing error, got {other:?}"),
        }
        // A current-epoch resync re-registers the inventory.
        match handle(
            &coord,
            CoordinatorRequest::ResyncReport {
                producer,
                bytes: 100,
                epoch: 2,
                at: SimTime::from_secs(4),
            },
        ) {
            CoordinatorResponse::Resynced { epoch: 2, .. } => {}
            other => panic!("expected a resync grant, got {other:?}"),
        }
        assert_eq!(coord.leased_bytes(), 100);
    }

    #[test]
    fn messages_are_serialisable_and_comparable() {
        fn assert_wire_type<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq>() {}
        assert_wire_type::<CoordinatorRequest>();
        assert_wire_type::<CoordinatorResponse>();

        let a = CoordinatorRequest::Lease {
            producer: GpuRef::single(GpuId(1)),
            bytes: 42,
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(
            a,
            CoordinatorRequest::ReclaimRequest {
                producer: GpuRef::single(GpuId(1))
            }
        );
    }
}
