//! Producer-side control loops (§B.1).
//!
//! "To demonstrate the versatility of the policy framework, we … implemented
//! *batch-informer* for image, audio models and *llm-informer* for LLMs."
//!
//! * [`BatchInformer`] — image/audio engines serve requests as they arrive
//!   at a fixed plateau batch, so after each batch the informer "gets an
//!   accurate measure of free memory and donates it".
//! * [`LlmInformer`] — an LLM is a producer only while its traffic is low.
//!   The informer watches the pending-request queue over a window: below
//!   the low-water mark it donates everything above the engine's retain
//!   floor; at the high-water mark it starts the reclaim protocol and
//!   *pauses the engine* until the consumer has released the memory
//!   (Figure 11's reclaim pause).

use crate::coordinator::{Coordinator, GpuRef, ReclaimStatus};
use aqua_engines::northbound::{Informer, MemoryElastic};
use aqua_sim::time::SimTime;
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use std::collections::VecDeque;
use std::sync::Arc;

/// Minimum donation worth registering (avoids churning tiny leases).
pub const MIN_DONATION_BYTES: u64 = 512 * 1024 * 1024;

/// Donates a producer's measured free memory after each batch.
///
/// # Example
///
/// ```
/// use aqua_core::coordinator::{Coordinator, GpuRef};
/// use aqua_core::informer::BatchInformer;
/// use aqua_engines::northbound::{Informer, MemoryElastic};
/// use aqua_engines::producer::{ProducerEngine, ProducerModel};
/// use aqua_models::zoo;
/// use aqua_sim::gpu::{GpuId, GpuSpec};
/// use aqua_sim::time::SimTime;
/// use std::sync::Arc;
///
/// let coord = Arc::new(Coordinator::new());
/// let sd = zoo::stable_diffusion();
/// let mut engine = ProducerEngine::new(
///     ProducerModel::Diffusion(*sd.diffusion_geometry().unwrap()),
///     GpuSpec::a100_80g(), 8);
/// let mut informer = BatchInformer::new(GpuRef::single(GpuId(1)), Arc::clone(&coord));
/// informer.control(&mut engine, SimTime::ZERO);
/// assert!(coord.leased_bytes() > 40 << 30); // tens of GB donated
/// ```
#[derive(Debug)]
pub struct BatchInformer {
    gpu: GpuRef,
    coordinator: Arc<Coordinator>,
    tracer: SharedTracer,
}

impl BatchInformer {
    /// Creates a batch informer for the producer at `gpu`.
    pub fn new(gpu: GpuRef, coordinator: Arc<Coordinator>) -> Self {
        BatchInformer {
            gpu,
            coordinator,
            tracer: null_tracer(),
        }
    }

    /// Attaches a tracer; donations show up as [`TraceEvent::Donated`] +
    /// [`TraceEvent::LeaseGranted`] pairs.
    pub fn with_tracer(mut self, tracer: SharedTracer) -> Self {
        self.tracer = tracer;
        self
    }
}

impl Informer for BatchInformer {
    fn control(&mut self, engine: &mut dyn MemoryElastic, now: SimTime) -> SimTime {
        // Every control tick proves the producer alive to the coordinator's
        // failure detector.
        self.coordinator.heartbeat(self.gpu, now);
        let stats = engine.stats();
        if stats.donatable_bytes >= MIN_DONATION_BYTES {
            let granted = engine.donate(stats.donatable_bytes);
            if granted > 0 {
                let lease = self.coordinator.lease(self.gpu, granted);
                self.tracer.incr("informer.donations", 1);
                trace!(
                    self.tracer,
                    TraceEvent::Donated {
                        gpu: self.gpu.to_string(),
                        bytes: granted,
                        at: now,
                    }
                );
                trace!(
                    self.tracer,
                    TraceEvent::LeaseGranted {
                        producer: self.gpu.to_string(),
                        lease: lease.0,
                        bytes: granted,
                        at: now,
                    }
                );
            }
        }
        now
    }
}

/// Configuration of an [`LlmInformer`].
#[derive(Debug, Clone)]
pub struct LlmInformerConfig {
    /// Number of recent `inform_stats` samples in the decision window.
    pub window: usize,
    /// Donate when every sample in the window has at most this many pending
    /// requests.
    pub low_pending: usize,
    /// Start reclaiming when pending requests reach this level.
    pub high_pending: usize,
}

impl Default for LlmInformerConfig {
    fn default() -> Self {
        LlmInformerConfig {
            window: 5,
            low_pending: 1,
            high_pending: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LlmState {
    Normal,
    Reclaiming,
}

/// Queue-depth-driven donate/reclaim loop for LLM producers.
#[derive(Debug)]
pub struct LlmInformer {
    gpu: GpuRef,
    coordinator: Arc<Coordinator>,
    config: LlmInformerConfig,
    history: VecDeque<usize>,
    state: LlmState,
    reclaims_started: u64,
    /// The coordinator epoch this informer last synced with. A bump means
    /// the lease book was lost in a crash; the informer re-registers its
    /// full donated inventory before any other verb.
    epoch: u64,
    tracer: SharedTracer,
}

impl LlmInformer {
    /// Creates an informer for the LLM producer at `gpu`.
    pub fn new(gpu: GpuRef, coordinator: Arc<Coordinator>, config: LlmInformerConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(
            config.low_pending < config.high_pending,
            "low-water mark must be below high-water mark"
        );
        let epoch = coordinator.epoch();
        LlmInformer {
            gpu,
            coordinator,
            config,
            history: VecDeque::new(),
            state: LlmState::Normal,
            reclaims_started: 0,
            epoch,
            tracer: null_tracer(),
        }
    }

    /// Attaches a tracer; the donate/reclaim state machine becomes visible as
    /// [`TraceEvent::InformerDecision`] events plus the memory events they
    /// cause.
    pub fn with_tracer(mut self, tracer: SharedTracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Number of reclaim cycles initiated.
    pub fn reclaims_started(&self) -> u64 {
        self.reclaims_started
    }
}

impl Informer for LlmInformer {
    fn control(&mut self, engine: &mut dyn MemoryElastic, now: SimTime) -> SimTime {
        // While the coordinator is unreachable (crashed or partitioned away)
        // every control verb would just time out. The producer keeps serving
        // autonomously and retries at the next tick.
        if !self.coordinator.reachable(self.gpu.gpu, now) {
            self.tracer.incr("informer.unreachable_ticks", 1);
            return now;
        }
        // Epoch fence: a bumped epoch means the coordinator crashed and lost
        // the lease book. Re-register the full donated inventory before any
        // other verb — a pre-crash heartbeat or free would bounce off the
        // fence, and skipping the resync would make the same-epoch revocation
        // path below reclaim bytes a consumer may still hold.
        let current = self.coordinator.epoch();
        if current != self.epoch {
            let stats = engine.stats();
            if stats.donated_bytes > 0 {
                match self
                    .coordinator
                    .resync_report(self.gpu, stats.donated_bytes, current, now)
                {
                    Ok(lease) => {
                        self.epoch = current;
                        self.history.clear();
                        self.tracer.incr("informer.epoch_resyncs", 1);
                        trace!(
                            self.tracer,
                            TraceEvent::InformerDecision {
                                gpu: self.gpu.to_string(),
                                decision: format!(
                                    "resync-epoch epoch={current} lease={} bytes={}",
                                    lease.0, stats.donated_bytes
                                ),
                                at: now,
                            }
                        );
                    }
                    // Coordinator crashed again (or is still rebuilding):
                    // keep the old epoch and retry at the next tick.
                    Err(_) => return now,
                }
            } else {
                self.epoch = current;
            }
        }
        if self
            .coordinator
            .heartbeat_fenced(self.gpu, now, self.epoch)
            .is_err()
        {
            // Raced another epoch bump between the sync above and the
            // heartbeat; the next tick re-registers.
            return now;
        }
        let stats = engine.stats();
        match self.state {
            LlmState::Normal => {
                // Resync: leases the coordinator revoked (expiry, forced
                // revocation) are memory the engine believes is donated but
                // nobody will ever release. Take it back immediately.
                let live = self.coordinator.live_lease_bytes(self.gpu);
                if stats.donated_bytes > live {
                    let lost = stats.donated_bytes - live;
                    engine.reclaim(lost);
                    // The quiet history predates the outage (no ticks ran
                    // while the producer was dark); demand a fresh quiet
                    // window before donating again.
                    self.history.clear();
                    self.tracer.incr("informer.resyncs", 1);
                    trace!(
                        self.tracer,
                        TraceEvent::InformerDecision {
                            gpu: self.gpu.to_string(),
                            decision: format!("resync-revoked bytes={lost}"),
                            at: now,
                        }
                    );
                }
                // The resync may have changed the engine's books.
                let stats = engine.stats();
                self.history.push_back(stats.pending_requests);
                while self.history.len() > self.config.window {
                    self.history.pop_front();
                }
                if stats.pending_requests >= self.config.high_pending && stats.donated_bytes > 0 {
                    // Queue build-up: take the memory back (timestamped, so
                    // the reclaim deadline arms right now).
                    self.coordinator.reclaim_request_at(self.gpu, now);
                    self.state = LlmState::Reclaiming;
                    self.reclaims_started += 1;
                    self.tracer.incr("informer.reclaims", 1);
                    trace!(
                        self.tracer,
                        TraceEvent::InformerDecision {
                            gpu: self.gpu.to_string(),
                            decision: format!("reclaim-start pending={}", stats.pending_requests),
                            at: now,
                        }
                    );
                    trace!(
                        self.tracer,
                        TraceEvent::ReclaimRequested {
                            producer: self.gpu.to_string(),
                            at: now,
                        }
                    );
                    return now;
                }
                let quiet = self.history.len() == self.config.window
                    && self.history.iter().all(|&p| p <= self.config.low_pending);
                if quiet && stats.donatable_bytes >= MIN_DONATION_BYTES {
                    let granted = engine.donate(stats.donatable_bytes);
                    if granted > 0 {
                        let lease = self.coordinator.lease(self.gpu, granted);
                        self.tracer.incr("informer.donations", 1);
                        trace!(
                            self.tracer,
                            TraceEvent::InformerDecision {
                                gpu: self.gpu.to_string(),
                                decision: format!("donate bytes={granted}"),
                                at: now,
                            }
                        );
                        trace!(
                            self.tracer,
                            TraceEvent::Donated {
                                gpu: self.gpu.to_string(),
                                bytes: granted,
                                at: now,
                            }
                        );
                        trace!(
                            self.tracer,
                            TraceEvent::LeaseGranted {
                                producer: self.gpu.to_string(),
                                lease: lease.0,
                                bytes: granted,
                                at: now,
                            }
                        );
                    }
                }
                now
            }
            LlmState::Reclaiming => match self.coordinator.reclaim_status(self.gpu) {
                ReclaimStatus::Pending => now,
                ReclaimStatus::Released { bytes, at } => {
                    engine.reclaim(bytes);
                    self.state = LlmState::Normal;
                    self.history.clear();
                    // The engine was effectively paused while its memory was
                    // being released (Figure 11).
                    let resume = at.max(now);
                    trace!(
                        self.tracer,
                        TraceEvent::Reclaimed {
                            gpu: self.gpu.to_string(),
                            bytes,
                            at: resume,
                        }
                    );
                    trace!(
                        self.tracer,
                        TraceEvent::InformerDecision {
                            gpu: self.gpu.to_string(),
                            decision: format!("resume bytes={bytes}"),
                            at: resume,
                        }
                    );
                    resume
                }
                ReclaimStatus::None => {
                    self.state = LlmState::Normal;
                    self.history.clear();
                    now
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_engines::northbound::EngineStats;
    use aqua_sim::gpu::GpuId;
    use aqua_sim::link::bytes::gib;

    /// Scripted engine for exercising informer state machines.
    struct FakeEngine {
        pending: usize,
        donatable: u64,
        donated: u64,
    }

    impl MemoryElastic for FakeEngine {
        fn stats(&self) -> EngineStats {
            EngineStats {
                pending_requests: self.pending,
                running_requests: 0,
                context_used_bytes: 0,
                context_reserved_bytes: gib(40),
                donatable_bytes: self.donatable,
                donated_bytes: self.donated,
            }
        }
        fn donate(&mut self, bytes: u64) -> u64 {
            let granted = bytes.min(self.donatable);
            self.donatable -= granted;
            self.donated += granted;
            granted
        }
        fn reclaim(&mut self, bytes: u64) {
            let back = bytes.min(self.donated);
            self.donated -= back;
            self.donatable += back;
        }
    }

    fn producer() -> GpuRef {
        GpuRef::single(GpuId(1))
    }

    #[test]
    fn llm_informer_donates_after_quiet_window() {
        let coord = Arc::new(Coordinator::new());
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default());
        let mut eng = FakeEngine {
            pending: 0,
            donatable: gib(30),
            donated: 0,
        };
        // Needs a full quiet window before donating.
        for i in 0..4 {
            inf.control(&mut eng, SimTime::from_secs(i));
            assert_eq!(coord.leased_bytes(), 0, "no donation before window fills");
        }
        inf.control(&mut eng, SimTime::from_secs(4));
        assert_eq!(coord.leased_bytes(), gib(30));
        assert_eq!(eng.donated, gib(30));
    }

    #[test]
    fn llm_informer_reclaims_on_burst_and_pauses_until_release() {
        let coord = Arc::new(Coordinator::new());
        let consumer = GpuRef::single(GpuId(0));
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default());
        let mut eng = FakeEngine {
            pending: 0,
            donatable: gib(30),
            donated: 0,
        };
        for i in 0..5 {
            inf.control(&mut eng, SimTime::from_secs(i));
        }
        let lease_used = match coord.allocate(consumer, gib(10)) {
            crate::coordinator::AllocationSite::Peer { lease, .. } => lease,
            other => panic!("expected peer allocation, got {other:?}"),
        };

        // Burst: queue jumps past the high-water mark.
        eng.pending = 20;
        let t = inf.control(&mut eng, SimTime::from_secs(10));
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(inf.reclaims_started(), 1);

        // Consumer has not released yet: engine stays paused at `now`.
        let t = inf.control(&mut eng, SimTime::from_secs(11));
        assert_eq!(t, SimTime::from_secs(11));
        assert_eq!(eng.donated, gib(30), "memory not yet back");

        // Consumer releases at t=14.
        coord
            .release(lease_used, gib(10), SimTime::from_secs(14))
            .unwrap();
        let resume = inf.control(&mut eng, SimTime::from_secs(12));
        assert_eq!(
            resume,
            SimTime::from_secs(14),
            "resume when bytes have left"
        );
        assert_eq!(eng.donated, 0);
        assert_eq!(eng.donatable, gib(30));
    }

    #[test]
    fn llm_informer_ignores_burst_when_nothing_donated() {
        let coord = Arc::new(Coordinator::new());
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default());
        let mut eng = FakeEngine {
            pending: 50,
            donatable: gib(30),
            donated: 0,
        };
        inf.control(&mut eng, SimTime::ZERO);
        assert_eq!(inf.reclaims_started(), 0);
    }

    #[test]
    fn batch_informer_donates_immediately() {
        let coord = Arc::new(Coordinator::new());
        let mut inf = BatchInformer::new(producer(), Arc::clone(&coord));
        let mut eng = FakeEngine {
            pending: 3,
            donatable: gib(50),
            donated: 0,
        };
        inf.control(&mut eng, SimTime::ZERO);
        assert_eq!(coord.leased_bytes(), gib(50));
        // Second call: nothing more to donate, lease unchanged.
        inf.control(&mut eng, SimTime::from_secs(1));
        assert_eq!(coord.leased_bytes(), gib(50));
    }

    #[test]
    fn tiny_donations_are_skipped() {
        let coord = Arc::new(Coordinator::new());
        let mut inf = BatchInformer::new(producer(), Arc::clone(&coord));
        let mut eng = FakeEngine {
            pending: 0,
            donatable: MIN_DONATION_BYTES - 1,
            donated: 0,
        };
        inf.control(&mut eng, SimTime::ZERO);
        assert_eq!(coord.leased_bytes(), 0);
    }

    #[test]
    fn traced_informer_journals_donate_and_reclaim_cycle() {
        use aqua_telemetry::{JournalTracer, TraceEvent};

        let coord = Arc::new(Coordinator::new());
        let journal = Arc::new(JournalTracer::new());
        let tracer: aqua_telemetry::SharedTracer = journal.clone();
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default())
                .with_tracer(tracer);
        let mut eng = FakeEngine {
            pending: 0,
            donatable: gib(30),
            donated: 0,
        };
        for i in 0..5 {
            inf.control(&mut eng, SimTime::from_secs(i));
        }
        let events = journal.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Donated { bytes, .. } if *bytes == gib(30)
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::LeaseGranted { .. })));

        // Burst → reclaim-start decision + ReclaimRequested.
        eng.pending = 20;
        inf.control(&mut eng, SimTime::from_secs(10));
        let events = journal.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::ReclaimRequested { .. })));

        // Nothing was allocated, so the reclaim resolves immediately.
        inf.control(&mut eng, SimTime::from_secs(11));
        let events = journal.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Reclaimed { bytes, .. } if *bytes == gib(30)
        )));
        assert_eq!(journal.registry().counter("informer.donations"), 1);
        assert_eq!(journal.registry().counter("informer.reclaims"), 1);
    }

    #[test]
    fn informer_heartbeats_every_control_tick() {
        use aqua_telemetry::JournalTracer;

        let journal = Arc::new(JournalTracer::new());
        let coord = Arc::new(Coordinator::new());
        coord.set_tracer(journal.clone());
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default());
        let mut eng = FakeEngine {
            pending: 0,
            donatable: 0,
            donated: 0,
        };
        for i in 0..3 {
            inf.control(&mut eng, SimTime::from_secs(i));
        }
        assert_eq!(journal.registry().counter("coordinator.heartbeat"), 3);
        assert_eq!(journal.len(), 0, "heartbeats are journal-silent");
    }

    #[test]
    fn informer_resyncs_after_its_lease_expires() {
        use crate::coordinator::FailureConfig;
        use aqua_telemetry::JournalTracer;

        let journal = Arc::new(JournalTracer::new());
        let coord = Arc::new(Coordinator::new());
        coord.set_failure_config(FailureConfig::chaos());
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default())
                .with_tracer(journal.clone());
        let mut eng = FakeEngine {
            pending: 0,
            donatable: gib(30),
            donated: 0,
        };
        for i in 0..5 {
            inf.control(&mut eng, SimTime::from_secs(i));
        }
        assert_eq!(eng.donated, gib(30));
        // The producer goes dark (no control ticks, no heartbeats); the
        // coordinator's watchdog expires the lease.
        coord.advance(SimTime::from_secs(5));
        coord.advance(SimTime::from_secs(30));
        assert_eq!(coord.live_lease_bytes(producer()), 0);
        assert_eq!(eng.donated, gib(30), "engine books are now stale");
        // It comes back: the first control tick resyncs the books.
        inf.control(&mut eng, SimTime::from_secs(31));
        assert_eq!(eng.donated, 0);
        assert_eq!(eng.donatable, gib(30), "engine books match the coordinator");
        assert_eq!(journal.registry().counter("informer.resyncs"), 1);
        assert!(journal.events().iter().any(|e| matches!(
            e,
            TraceEvent::InformerDecision { decision, .. } if decision.starts_with("resync-revoked")
        )));
    }

    #[test]
    fn informer_reregisters_inventory_after_a_coordinator_crash() {
        use aqua_telemetry::JournalTracer;

        let journal = Arc::new(JournalTracer::new());
        let coord = Arc::new(Coordinator::new());
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default())
                .with_tracer(journal.clone());
        let mut eng = FakeEngine {
            pending: 0,
            donatable: gib(30),
            donated: 0,
        };
        for i in 0..5 {
            inf.control(&mut eng, SimTime::from_secs(i));
        }
        assert_eq!(coord.live_lease_bytes(producer()), gib(30));

        // Crash wipes the lease book and bumps the epoch.
        coord.crash(SimTime::from_secs(6));
        // A tick while the coordinator is down makes no progress: the resync
        // bounces and the informer must NOT treat the wiped book as a
        // same-epoch revocation (the consumer may still hold those bytes).
        inf.control(&mut eng, SimTime::from_secs(7));
        assert_eq!(eng.donated, gib(30), "no reclaim while the book is lost");
        assert_eq!(journal.registry().counter("informer.epoch_resyncs"), 0);

        // First tick after recovery re-registers the full inventory in the
        // new epoch instead of releasing it.
        coord.recover(SimTime::from_secs(8));
        inf.control(&mut eng, SimTime::from_secs(9));
        assert_eq!(coord.live_lease_bytes(producer()), gib(30));
        assert_eq!(eng.donated, gib(30), "re-homed, not released");
        assert_eq!(journal.registry().counter("informer.epoch_resyncs"), 1);
        assert_eq!(journal.registry().counter("informer.resyncs"), 0);
        assert!(journal.events().iter().any(|e| matches!(
            e,
            TraceEvent::InformerDecision { decision, .. } if decision.starts_with("resync-epoch epoch=2")
        )));
        // And the books audit clean across the crash.
        let auditor = aqua_sim::audit::Auditor::collecting();
        coord.set_auditor(auditor.clone());
        coord.audit_books(SimTime::from_secs(9));
        assert!(auditor.is_clean(), "{:?}", auditor.violations());
    }

    #[test]
    fn informer_skips_control_verbs_while_partitioned() {
        use aqua_sim::fault::FaultPlan;
        use aqua_telemetry::JournalTracer;

        let journal = Arc::new(JournalTracer::new());
        let coord = Arc::new(Coordinator::new());
        coord.set_tracer(journal.clone());
        // GPUs 1..=3 lose the coordinator between t=2s and t=4s.
        coord.set_fault_plan(Arc::new(FaultPlan::new().partition(
            1,
            SimTime::from_secs(2),
            SimTime::from_secs(4),
        )));
        let mut inf =
            LlmInformer::new(producer(), Arc::clone(&coord), LlmInformerConfig::default())
                .with_tracer(journal.clone());
        let mut eng = FakeEngine {
            pending: 0,
            donatable: 0,
            donated: 0,
        };
        for i in 0..6 {
            inf.control(&mut eng, SimTime::from_secs(i));
        }
        // Ticks at t=2 and t=3 fall inside the partition window: no
        // heartbeats land, and the informer records the dark ticks.
        assert_eq!(journal.registry().counter("coordinator.heartbeat"), 4);
        assert_eq!(journal.registry().counter("informer.unreachable_ticks"), 2);
    }

    #[test]
    #[should_panic(expected = "low-water mark")]
    fn invalid_config_rejected() {
        LlmInformer::new(
            producer(),
            Arc::new(Coordinator::new()),
            LlmInformerConfig {
                window: 3,
                low_pending: 9,
                high_pending: 4,
            },
        );
    }
}
