//! The AQUA offload backend: peer-GPU HBM over the inter-GPU fabric.
//!
//! This is where the paper's performance comes from. Compared with the
//! baseline DRAM offloader:
//!
//! * **Destination**: the coordinator places offloaded bytes on a
//!   same-server producer GPU's leased HBM when one exists; otherwise the
//!   offloader transparently falls back to host DRAM ("if no producer GPUs
//!   exist in the system, AQUA-LIB falls back to using the DRAM", §3).
//! * **Transfer shape**: scattered context tensors are first gathered into a
//!   contiguous staging buffer on the GPU (the custom CUDA gather/scatter
//!   kernels of §5) and then moved as **one coalesced copy**, because NVLink
//!   bandwidth collapses for small transfers (Figure 3a).
//! * **Elasticity**: at every iteration boundary (`aqua.respond()`), the
//!   offloader checks for producer reclaims and, when one is pending,
//!   *blocks* while it migrates its bytes from the producer's HBM to DRAM
//!   ("inference on a consumer GPU blocks only when it is releasing memory
//!   back", §B). When lease capacity reappears, DRAM-resident bytes are
//!   promoted back to the peer in the background.

use crate::coordinator::{AllocationSite, Coordinator, GpuRef, LeaseId};
use aqua_engines::offload::{OffloadLocation, Offloader};
use aqua_sim::time::SimTime;
use aqua_sim::topology::ServerTopology;
use aqua_sim::transfer::{staging_time, TransferEngine, TransferPlan};
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// AQUA's fabric-accelerated offloader for one consumer GPU.
///
/// See the crate-level example for typical usage; constructed per consumer
/// engine and boxed into the engine's offload slot.
pub struct AquaOffloader {
    consumer: GpuRef,
    coordinator: Arc<Coordinator>,
    server: Rc<ServerTopology>,
    transfers: Rc<RefCell<TransferEngine>>,
    /// Bytes we currently hold on each lease (producer GPU).
    peer_bytes: BTreeMap<LeaseId, (GpuRef, u64)>,
    /// Bytes we currently hold in host DRAM (fallback).
    dram_bytes: u64,
    /// Cumulative bytes moved over the fabric (for reports).
    fabric_bytes_moved: u64,
    /// Cumulative bytes moved over PCIe (fallback + releases).
    pcie_bytes_moved: u64,
    /// Number of blocking release migrations performed.
    releases: u64,
    label: String,
    tracer: SharedTracer,
}

impl std::fmt::Debug for AquaOffloader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AquaOffloader")
            .field("consumer", &self.consumer)
            .field("peer_bytes", &self.peer_total())
            .field("dram_bytes", &self.dram_bytes)
            .field("releases", &self.releases)
            .finish()
    }
}

impl AquaOffloader {
    /// Creates an offloader for `consumer`, brokered by `coordinator`, on
    /// `server`, sharing the server-wide `transfers` engine.
    pub fn new(
        consumer: GpuRef,
        coordinator: Arc<Coordinator>,
        server: Rc<ServerTopology>,
        transfers: Rc<RefCell<TransferEngine>>,
    ) -> Self {
        AquaOffloader {
            consumer,
            coordinator,
            server,
            transfers,
            peer_bytes: BTreeMap::new(),
            dram_bytes: 0,
            fabric_bytes_moved: 0,
            pcie_bytes_moved: 0,
            releases: 0,
            label: "aqua".to_owned(),
            tracer: null_tracer(),
        }
    }

    /// Attaches a tracer; allocation-site decisions, lease frees, blocking
    /// reclaim releases and background promotions are journalled.
    pub fn with_tracer(mut self, tracer: SharedTracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Bytes currently offloaded to peer GPUs.
    pub fn peer_total(&self) -> u64 {
        self.peer_bytes.values().map(|(_, b)| *b).sum()
    }

    /// Bytes currently offloaded to host DRAM (fallback).
    pub fn dram_total(&self) -> u64 {
        self.dram_bytes
    }

    /// Cumulative bytes moved over the inter-GPU fabric.
    pub fn fabric_bytes_moved(&self) -> u64 {
        self.fabric_bytes_moved
    }

    /// Cumulative bytes moved over PCIe (fallback traffic and releases).
    pub fn pcie_bytes_moved(&self) -> u64 {
        self.pcie_bytes_moved
    }

    /// Number of blocking release migrations (producer reclaims served).
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Pre-stages `bytes` into the offload store without charging transfer
    /// time — used to model content that already lives there before the
    /// experiment starts (e.g. a LoRA adapter pool).
    pub fn prestage(&mut self, bytes: u64) -> AllocationSite {
        let site = self.coordinator.allocate(self.consumer, bytes);
        match site {
            AllocationSite::Peer { lease, gpu } => {
                let entry = self.peer_bytes.entry(lease).or_insert((gpu, 0));
                entry.1 += bytes;
            }
            AllocationSite::Dram => self.dram_bytes += bytes,
        }
        site
    }

    /// Gather cost for converting `chunks` scattered tensors into one
    /// staging buffer (zero when the data is already contiguous).
    fn gather_cost(&self, bytes: u64, chunks: u64) -> aqua_sim::time::SimDuration {
        if chunks <= 1 {
            aqua_sim::time::SimDuration::ZERO
        } else {
            staging_time(bytes, self.server.gpu(self.consumer.gpu).spec.hbm_bandwidth)
        }
    }

    fn fabric_copy(&mut self, from: GpuRef, to: GpuRef, bytes: u64, start: SimTime) -> SimTime {
        let path = self
            .server
            .gpu_to_gpu_path(from.gpu, to.gpu)
            .expect("coordinator only pairs distinct same-server GPUs");
        self.fabric_bytes_moved += bytes;
        self.transfers
            .borrow_mut()
            .schedule(&path, TransferPlan::coalesced(bytes), start)
            .end
    }

    fn pcie_to_host(&mut self, from: GpuRef, bytes: u64, start: SimTime) -> SimTime {
        let path = self.server.gpu_to_host_path(from.gpu);
        self.pcie_bytes_moved += bytes;
        self.transfers
            .borrow_mut()
            .schedule(&path, TransferPlan::coalesced(bytes), start)
            .end
    }

    fn pcie_from_host(&mut self, to: GpuRef, bytes: u64, start: SimTime) -> SimTime {
        let path = self.server.host_to_gpu_path(to.gpu);
        self.pcie_bytes_moved += bytes;
        self.transfers
            .borrow_mut()
            .schedule(&path, TransferPlan::coalesced(bytes), start)
            .end
    }

    fn trace_allocation(&self, site: &str, bytes: u64, at: SimTime) {
        self.tracer.incr(
            if site == "dram" {
                "offloader.dram_allocations"
            } else {
                "offloader.peer_allocations"
            },
            1,
        );
        trace!(
            self.tracer,
            TraceEvent::LeaseAllocated {
                consumer: self.consumer.to_string(),
                site: site.to_owned(),
                bytes,
                at,
            }
        );
    }

    /// Splits an inbound read/swap across current storage sites,
    /// peer-resident bytes first (they are both faster and preferred).
    fn split_inbound(&self, bytes: u64) -> (Vec<(LeaseId, GpuRef, u64)>, u64) {
        let mut remaining = bytes;
        let mut from_peer = Vec::new();
        for (lease, (gpu, held)) in &self.peer_bytes {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(*held);
            if take > 0 {
                from_peer.push((*lease, *gpu, take));
                remaining -= take;
            }
        }
        let from_dram = remaining.min(self.dram_bytes);
        (from_peer, from_dram)
    }
}

impl Offloader for AquaOffloader {
    fn swap_out(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let start = now + self.gather_cost(bytes, chunks);
        // Lease affinity: keep growing context on the producer that already
        // holds it (1:1 pairing; avoids fanning one consumer's bytes across
        // every lease on the server).
        let existing: Vec<(LeaseId, GpuRef)> =
            self.peer_bytes.iter().map(|(l, (g, _))| (*l, *g)).collect();
        for (lease, gpu) in existing {
            if self.coordinator.try_allocate_on(lease, bytes) {
                let end = self.fabric_copy(self.consumer, gpu, bytes, start);
                self.peer_bytes.get_mut(&lease).expect("tracked").1 += bytes;
                self.trace_allocation(&format!("peer:{gpu}"), bytes, now);
                return end;
            }
        }
        match self.coordinator.allocate(self.consumer, bytes) {
            AllocationSite::Peer { lease, gpu } => {
                let end = self.fabric_copy(self.consumer, gpu, bytes, start);
                let entry = self.peer_bytes.entry(lease).or_insert((gpu, 0));
                entry.1 += bytes;
                self.trace_allocation(&format!("peer:{gpu}"), bytes, now);
                end
            }
            AllocationSite::Dram => {
                let end = self.pcie_to_host(self.consumer, bytes, start);
                self.dram_bytes += bytes;
                self.trace_allocation("dram", bytes, now);
                end
            }
        }
    }

    fn swap_in(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let (from_peer, from_dram) = self.split_inbound(bytes);
        let mut end = now;
        for (lease, gpu, take) in from_peer {
            let done = self.fabric_copy(gpu, self.consumer, take, now);
            end = end.max(done);
            self.coordinator.free(lease, take);
            trace!(
                self.tracer,
                TraceEvent::LeaseFreed {
                    consumer: self.consumer.to_string(),
                    lease: lease.0,
                    bytes: take,
                    at: now,
                }
            );
            let entry = self.peer_bytes.get_mut(&lease).expect("tracked lease");
            entry.1 -= take;
            if entry.1 == 0 {
                self.peer_bytes.remove(&lease);
            }
        }
        if from_dram > 0 {
            let done = self.pcie_from_host(self.consumer, from_dram, now);
            end = end.max(done);
            self.dram_bytes -= from_dram;
        }
        // Scatter the staged buffer back into its per-layer tensors.
        end + self.gather_cost(bytes, chunks)
    }

    fn read_in(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let (from_peer, from_dram) = self.split_inbound(bytes);
        let mut end = now;
        let mut covered = 0u64;
        for (_, gpu, take) in from_peer {
            end = end.max(self.fabric_copy(gpu, self.consumer, take, now));
            covered += take;
        }
        let dram_part = from_dram + bytes.saturating_sub(covered + from_dram);
        if dram_part > 0 {
            end = end.max(self.pcie_from_host(self.consumer, dram_part, now));
        }
        end + self.gather_cost(bytes, chunks)
    }

    fn on_iteration_boundary(&mut self, now: SimTime) -> SimTime {
        let mut resume = now;
        // 1. Blocking release of any lease being reclaimed.
        let leases: Vec<LeaseId> = self.peer_bytes.keys().copied().collect();
        for lease in leases {
            if self.coordinator.pending_reclaim(lease) == 0 {
                continue;
            }
            let (gpu, held) = self.peer_bytes.remove(&lease).expect("tracked lease");
            // Migrate producer HBM -> host DRAM over the producer's PCIe.
            let end = self.pcie_to_host(gpu, held, resume);
            self.coordinator.release(lease, held, end);
            self.dram_bytes += held;
            self.releases += 1;
            self.tracer.incr("offloader.releases", 1);
            trace!(
                self.tracer,
                TraceEvent::ReclaimReleased {
                    producer: gpu.to_string(),
                    lease: lease.0,
                    bytes: held,
                    at: end,
                }
            );
            resume = resume.max(end);
        }
        // 2. Background promotion of DRAM-resident bytes back to a peer.
        if self.dram_bytes > 0 {
            let available = self.coordinator.available_on_server(self.consumer.server);
            let promote = self.dram_bytes.min(available);
            if promote > 0 {
                if let AllocationSite::Peer { lease, gpu } =
                    self.coordinator.allocate(self.consumer, promote)
                {
                    // Host -> producer over the producer's PCIe; does not
                    // block the consumer's inference loop.
                    let _ = self.pcie_from_host(gpu, promote, resume);
                    self.dram_bytes -= promote;
                    let entry = self.peer_bytes.entry(lease).or_insert((gpu, 0));
                    entry.1 += promote;
                    self.tracer.incr("offloader.promotions", 1);
                    trace!(
                        self.tracer,
                        TraceEvent::LeasePromoted {
                            consumer: self.consumer.to_string(),
                            lease: lease.0,
                            bytes: promote,
                            at: resume,
                        }
                    );
                }
            }
        }
        resume
    }

    fn location(&self) -> OffloadLocation {
        match (self.peer_total() > 0, self.dram_bytes > 0) {
            (true, false) => OffloadLocation::PeerGpu,
            (false, true) | (false, false) => OffloadLocation::HostDram,
            (true, true) => OffloadLocation::Mixed,
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::gpu::{GpuId, GpuSpec};
    use aqua_sim::link::bytes::{gib, mib};
    use aqua_sim::topology::ServerTopology;

    fn setup(lease_gib: u64) -> (AquaOffloader, Arc<Coordinator>) {
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        if lease_gib > 0 {
            coord.lease(GpuRef::single(GpuId(1)), gib(lease_gib));
        }
        let off = AquaOffloader::new(GpuRef::single(GpuId(0)), Arc::clone(&coord), server, xfer);
        (off, coord)
    }

    #[test]
    fn swap_out_lands_on_peer_when_leased() {
        let (mut off, coord) = setup(20);
        let end = off.swap_out(gib(2), 1024, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(2));
        assert_eq!(off.dram_total(), 0);
        assert_eq!(coord.used_bytes(), gib(2));
        // ~2 GiB at 250 GB/s + gather ≈ 11 ms.
        assert!(end.as_secs_f64() < 0.03, "end = {end}");
        assert_eq!(off.location(), OffloadLocation::PeerGpu);
    }

    #[test]
    fn falls_back_to_dram_without_lease() {
        let (mut off, _) = setup(0);
        let end = off.swap_out(gib(2), 1024, SimTime::ZERO);
        assert_eq!(off.peer_total(), 0);
        assert_eq!(off.dram_total(), gib(2));
        // 2 GiB at 25 GB/s ≈ 86 ms.
        assert!(end.as_secs_f64() > 0.05, "end = {end}");
        assert_eq!(off.location(), OffloadLocation::HostDram);
    }

    #[test]
    fn overflow_splits_across_peer_and_dram() {
        let (mut off, _) = setup(1);
        off.swap_out(gib(1), 1, SimTime::ZERO);
        off.swap_out(gib(1), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(1));
        assert_eq!(off.dram_total(), gib(1));
        assert_eq!(off.location(), OffloadLocation::Mixed);
    }

    #[test]
    fn swap_in_prefers_peer_and_frees_lease() {
        let (mut off, coord) = setup(4);
        off.swap_out(gib(2), 1, SimTime::ZERO);
        let end = off.swap_in(gib(2), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), 0);
        assert_eq!(coord.used_bytes(), 0);
        assert!(end.as_secs_f64() < 0.05);
    }

    #[test]
    fn read_in_does_not_consume_occupancy() {
        let (mut off, coord) = setup(4);
        off.prestage(mib(320));
        let before = coord.used_bytes();
        let t1 = off.read_in(mib(320), 256, SimTime::ZERO);
        let t2 = off.read_in(mib(320), 256, t1);
        assert!(t2 > t1);
        assert_eq!(coord.used_bytes(), before, "reads leave the store intact");
        assert_eq!(off.peer_total(), mib(320));
    }

    #[test]
    fn reclaim_blocks_and_migrates_to_dram() {
        let (mut off, coord) = setup(10);
        off.swap_out(gib(4), 1, SimTime::ZERO);
        coord.reclaim_request(GpuRef::single(GpuId(1)));
        let t0 = SimTime::from_secs(1);
        let resume = off.on_iteration_boundary(t0);
        // 4 GiB over PCIe ≈ 170 ms: the consumer is blocked meanwhile.
        assert!(resume > t0 + aqua_sim::time::SimDuration::from_millis(100));
        assert_eq!(off.peer_total(), 0);
        assert_eq!(off.dram_total(), gib(4));
        assert_eq!(off.releases(), 1);
        // Producer sees the release.
        assert!(matches!(
            coord.reclaim_status(GpuRef::single(GpuId(1))),
            crate::coordinator::ReclaimStatus::Released { bytes, .. } if bytes == gib(10)
        ));
    }

    #[test]
    fn dram_bytes_promote_back_when_lease_returns() {
        let (mut off, coord) = setup(0);
        off.swap_out(gib(2), 1, SimTime::ZERO);
        assert_eq!(off.dram_total(), gib(2));
        // A producer appears.
        coord.lease(GpuRef::single(GpuId(1)), gib(20));
        let resume = off.on_iteration_boundary(SimTime::from_secs(1));
        assert_eq!(resume, SimTime::from_secs(1), "promotion is non-blocking");
        assert_eq!(off.dram_total(), 0);
        assert_eq!(off.peer_total(), gib(2));
    }

    #[test]
    fn traced_offloader_journals_lease_lifecycle() {
        use aqua_telemetry::JournalTracer;

        let journal = Arc::new(JournalTracer::new());
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        coord.lease(GpuRef::single(GpuId(1)), gib(10));
        let mut off =
            AquaOffloader::new(GpuRef::single(GpuId(0)), Arc::clone(&coord), server, xfer)
                .with_tracer(journal.clone());

        off.swap_out(gib(2), 1, SimTime::ZERO);
        off.swap_in(gib(2), 1, SimTime::from_secs(1));
        coord.reclaim_request(GpuRef::single(GpuId(1)));
        off.swap_out(gib(1), 1, SimTime::from_secs(2)); // reclaiming: lands in DRAM
        off.on_iteration_boundary(SimTime::from_secs(3));

        let events = journal.events();
        let has = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().any(f);
        assert!(has(
            &|e| matches!(e, TraceEvent::LeaseAllocated { site, .. } if site == "peer:s0/gpu1")
        ));
        assert!(has(
            &|e| matches!(e, TraceEvent::LeaseAllocated { site, .. } if site == "dram")
        ));
        assert!(has(
            &|e| matches!(e, TraceEvent::LeaseFreed { bytes, .. } if *bytes == gib(2))
        ));
        assert_eq!(journal.registry().counter("offloader.peer_allocations"), 1);
        assert_eq!(journal.registry().counter("offloader.dram_allocations"), 1);
    }

    #[test]
    fn zero_byte_ops_are_instant() {
        let (mut off, _) = setup(1);
        let t = SimTime::from_secs(3);
        assert_eq!(off.swap_out(0, 0, t), t);
        assert_eq!(off.swap_in(0, 0, t), t);
        assert_eq!(off.read_in(0, 0, t), t);
    }

    #[test]
    fn gather_makes_scattered_cheap() {
        // Same payload, wildly different chunk counts: AQUA coalesces, so
        // the cost difference is just the staging sweep.
        let (mut off1, _) = setup(10);
        let t_few = off1.swap_out(mib(320), 1, SimTime::ZERO);
        let (mut off2, _) = setup(10);
        let t_many = off2.swap_out(mib(320), 100_000, SimTime::ZERO);
        let ratio = t_many.as_secs_f64() / t_few.as_secs_f64();
        assert!(
            ratio < 1.5,
            "coalescing keeps scatter cheap, ratio {ratio:.2}"
        );
    }
}
