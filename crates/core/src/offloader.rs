//! The AQUA offload backend: peer-GPU HBM over the inter-GPU fabric.
//!
//! This is where the paper's performance comes from. Compared with the
//! baseline DRAM offloader:
//!
//! * **Destination**: the coordinator places offloaded bytes on a
//!   same-server producer GPU's leased HBM when one exists; otherwise the
//!   offloader transparently falls back to host DRAM ("if no producer GPUs
//!   exist in the system, AQUA-LIB falls back to using the DRAM", §3).
//! * **Transfer shape**: scattered context tensors are first gathered into a
//!   contiguous staging buffer on the GPU (the custom CUDA gather/scatter
//!   kernels of §5) and then moved as **one coalesced copy**, because NVLink
//!   bandwidth collapses for small transfers (Figure 3a).
//! * **Elasticity**: at every iteration boundary (`aqua.respond()`), the
//!   offloader checks for producer reclaims and, when one is pending,
//!   *blocks* while it migrates its bytes from the producer's HBM to DRAM
//!   ("inference on a consumer GPU blocks only when it is releasing memory
//!   back", §B). When lease capacity reappears, DRAM-resident bytes are
//!   promoted back to the peer in the background.

use crate::coordinator::{AllocationSite, Coordinator, GpuRef, LeaseId, LeaseState};
use aqua_engines::offload::{OffloadLocation, Offloader};
use aqua_sim::audit::{AuditViolation, SharedAuditor};
use aqua_sim::fault::FaultPlan;
use aqua_sim::time::{SimDuration, SimTime};
use aqua_sim::topology::ServerTopology;
use aqua_sim::transfer::{staging_time, TransferEngine, TransferPlan};
use aqua_telemetry::{null_tracer, trace, SharedTracer, TraceEvent};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// How the offloader reacts when the fabric fails underneath a transfer.
///
/// The ladder is: retry the same path (transient flap), then fail over down
/// the site ladder (same lease → sibling lease → host DRAM), then pin new
/// allocations to DRAM for `degraded_window` so a dead link is not probed
/// on every swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverPolicy {
    /// Retries per transfer before the ladder advances (exponential
    /// backoff: `backoff`, `2*backoff`, ...).
    pub retry_budget: u32,
    /// Base backoff between retries.
    pub backoff: SimDuration,
    /// How long after a fabric failure new allocations stay pinned to
    /// DRAM before peer placement is attempted again.
    pub degraded_window: SimDuration,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        FailoverPolicy {
            retry_budget: 2,
            backoff: SimDuration::from_millis(2),
            degraded_window: SimDuration::from_secs(30),
        }
    }
}

impl FailoverPolicy {
    /// Backoff before retry `attempt` (1-based): the base doubled per prior
    /// attempt. A naive `backoff << (attempt - 1)` overflows `u64`
    /// nanoseconds past attempt ~64 (and much earlier for large bases), so
    /// the doubling saturates: pathological retry budgets wait out the rest
    /// of simulated time instead of wrapping back to a tiny backoff and
    /// hammering a dead link.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1);
        let multiplier = 1u64.checked_shl(shift).unwrap_or(u64::MAX);
        SimDuration::from_nanos(self.backoff.as_nanos().saturating_mul(multiplier))
    }
}

/// AQUA's fabric-accelerated offloader for one consumer GPU.
///
/// See the crate-level example for typical usage; constructed per consumer
/// engine and boxed into the engine's offload slot.
pub struct AquaOffloader {
    consumer: GpuRef,
    coordinator: Arc<Coordinator>,
    server: Rc<ServerTopology>,
    transfers: Rc<RefCell<TransferEngine>>,
    /// Bytes we currently hold on each lease (producer GPU).
    peer_bytes: BTreeMap<LeaseId, (GpuRef, u64)>,
    /// Bytes we currently hold in host DRAM (fallback).
    dram_bytes: u64,
    /// Cumulative bytes moved over the fabric (for reports).
    fabric_bytes_moved: u64,
    /// Cumulative bytes moved over PCIe (fallback + releases).
    pcie_bytes_moved: u64,
    /// Number of blocking release migrations performed.
    releases: u64,
    /// Failure-handling knobs.
    policy: FailoverPolicy,
    /// Injected fault schedule (for coordinator-stall latency); the
    /// transfer engine carries its own copy for the data plane.
    fault_plan: Option<Arc<FaultPlan>>,
    /// While set, new allocations are pinned to DRAM until this time.
    degraded_until: Option<SimTime>,
    /// The coordinator epoch this consumer last synced with. Lease ids are
    /// only honoured within the epoch that minted them (DESIGN §4.12).
    epoch: u64,
    /// First boundary at which the coordinator was found unreachable, while
    /// the outage lasts.
    unreachable_since: Option<SimTime>,
    /// Frees that could not land while the coordinator was unreachable.
    /// Replayed on reconnect if the epoch is unchanged; dropped (the lease
    /// ids died with the old book) if it bumped.
    deferred_frees: Vec<(LeaseId, u64)>,
    /// Transfer retries attempted after fabric failures.
    retries: u64,
    /// Failovers down the site ladder (peer → sibling → DRAM).
    failovers: u64,
    /// Bytes stranded on revoked leases and re-materialised in DRAM.
    lost_bytes: u64,
    label: String,
    tracer: SharedTracer,
    /// aqua-audit: local byte books are checked on every mutation.
    auditor: Option<SharedAuditor>,
}

impl std::fmt::Debug for AquaOffloader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AquaOffloader")
            .field("consumer", &self.consumer)
            .field("peer_bytes", &self.peer_total())
            .field("dram_bytes", &self.dram_bytes)
            .field("releases", &self.releases)
            .finish()
    }
}

impl AquaOffloader {
    /// Creates an offloader for `consumer`, brokered by `coordinator`, on
    /// `server`, sharing the server-wide `transfers` engine.
    pub fn new(
        consumer: GpuRef,
        coordinator: Arc<Coordinator>,
        server: Rc<ServerTopology>,
        transfers: Rc<RefCell<TransferEngine>>,
    ) -> Self {
        let epoch = coordinator.epoch();
        AquaOffloader {
            consumer,
            coordinator,
            server,
            transfers,
            peer_bytes: BTreeMap::new(),
            dram_bytes: 0,
            fabric_bytes_moved: 0,
            pcie_bytes_moved: 0,
            releases: 0,
            policy: FailoverPolicy::default(),
            fault_plan: None,
            degraded_until: None,
            epoch,
            unreachable_since: None,
            deferred_frees: Vec::new(),
            retries: 0,
            failovers: 0,
            lost_bytes: 0,
            label: "aqua".to_owned(),
            tracer: null_tracer(),
            auditor: None,
        }
    }

    /// Attaches a tracer; allocation-site decisions, lease frees, blocking
    /// reclaim releases and background promotions are journalled.
    pub fn with_tracer(mut self, tracer: SharedTracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Overrides the failure-handling knobs.
    pub fn with_policy(mut self, policy: FailoverPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches an invariant auditor: the offloader's local byte books
    /// (per-lease holdings, the DRAM tally) are checked against every
    /// mutation, and each iteration boundary sweeps the coordinator's lease
    /// books too.
    pub fn with_auditor(mut self, auditor: SharedAuditor) -> Self {
        self.auditor = Some(auditor);
        self
    }

    /// Checks that `take` bytes can legally leave a tracked holding of
    /// `held` bytes; records a conservation violation otherwise.
    fn audit_outflow(&self, scope: &str, held: u64, take: u64, at: SimTime) {
        if take > held {
            if let Some(aud) = &self.auditor {
                aud.record(AuditViolation::ByteConservation {
                    scope: format!("offloader:{}:{scope}", self.consumer),
                    expected: held,
                    actual: take,
                    at,
                });
            }
        }
    }

    /// Attaches the injected fault schedule so iteration boundaries model
    /// coordinator stalls. The shared [`TransferEngine`] needs the same
    /// plan (via `set_fault_plan`) for data-plane aborts.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Bytes currently offloaded to peer GPUs.
    pub fn peer_total(&self) -> u64 {
        self.peer_bytes.values().map(|(_, b)| *b).sum()
    }

    /// Bytes currently offloaded to host DRAM (fallback).
    pub fn dram_total(&self) -> u64 {
        self.dram_bytes
    }

    /// Cumulative bytes moved over the inter-GPU fabric.
    pub fn fabric_bytes_moved(&self) -> u64 {
        self.fabric_bytes_moved
    }

    /// Cumulative bytes moved over PCIe (fallback traffic and releases).
    pub fn pcie_bytes_moved(&self) -> u64 {
        self.pcie_bytes_moved
    }

    /// Number of blocking release migrations (producer reclaims served).
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Transfer retries attempted after fabric failures.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Failovers taken down the site ladder.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Bytes stranded on revoked leases and re-materialised in DRAM.
    pub fn lost_bytes(&self) -> u64 {
        self.lost_bytes
    }

    /// `true` while new allocations are pinned to DRAM after a failure.
    pub fn is_degraded(&self) -> bool {
        self.degraded_until.is_some()
    }

    /// Pre-stages `bytes` into the offload store without charging transfer
    /// time — used to model content that already lives there before the
    /// experiment starts (e.g. a LoRA adapter pool).
    pub fn prestage(&mut self, bytes: u64) -> AllocationSite {
        let site = self.coordinator.allocate(self.consumer, bytes);
        match site {
            AllocationSite::Peer { lease, gpu } => {
                let entry = self.peer_bytes.entry(lease).or_insert((gpu, 0));
                entry.1 += bytes;
            }
            AllocationSite::Dram => self.dram_bytes += bytes,
        }
        site
    }

    /// Gather cost for converting `chunks` scattered tensors into one
    /// staging buffer (zero when the data is already contiguous).
    fn gather_cost(&self, bytes: u64, chunks: u64) -> aqua_sim::time::SimDuration {
        if chunks <= 1 {
            aqua_sim::time::SimDuration::ZERO
        } else {
            staging_time(bytes, self.server.gpu(self.consumer.gpu).spec.hbm_bandwidth)
        }
    }

    /// One fabric copy with the retry ladder: on an abort or a dead path,
    /// back off and retry up to `retry_budget` times (a flap may clear),
    /// then give up so the caller can fail over. `None` means the fabric
    /// stayed unusable for the whole budget.
    fn try_fabric(
        &mut self,
        from: GpuRef,
        to: GpuRef,
        bytes: u64,
        start: SimTime,
    ) -> Option<SimTime> {
        let path = self
            .server
            .gpu_to_gpu_path(from.gpu, to.gpu)
            .expect("coordinator only pairs distinct same-server GPUs");
        let mut at = start;
        let mut attempt: u32 = 0;
        loop {
            let res =
                self.transfers
                    .borrow_mut()
                    .try_schedule(&path, TransferPlan::coalesced(bytes), at);
            match res {
                Ok(sched) => {
                    self.fabric_bytes_moved += bytes;
                    return Some(sched.end);
                }
                Err(e) => {
                    if attempt >= self.policy.retry_budget {
                        return None;
                    }
                    attempt += 1;
                    self.retries += 1;
                    self.tracer.incr("offloader.retries", 1);
                    at = e.at().max(at) + self.policy.backoff_for(attempt);
                    trace!(
                        self.tracer,
                        TraceEvent::TransferRetried {
                            consumer: self.consumer.to_string(),
                            attempt: attempt as u64,
                            at,
                        }
                    );
                }
            }
        }
    }

    fn note_failover(&mut self, from: &str, to: &str, bytes: u64, at: SimTime) {
        self.failovers += 1;
        self.tracer.incr("offloader.failovers", 1);
        trace!(
            self.tracer,
            TraceEvent::FailoverEngaged {
                consumer: self.consumer.to_string(),
                from: from.to_owned(),
                to: to.to_owned(),
                bytes,
                at,
            }
        );
    }

    fn enter_degraded(&mut self, now: SimTime) {
        let until = now + self.policy.degraded_window;
        if self.degraded_until.is_none() {
            self.tracer.incr("offloader.degraded_entries", 1);
            trace!(
                self.tracer,
                TraceEvent::DegradedMode {
                    consumer: self.consumer.to_string(),
                    state: "enter".to_owned(),
                    at: now,
                }
            );
        }
        self.degraded_until = Some(self.degraded_until.map_or(until, |d| d.max(until)));
    }

    fn maybe_exit_degraded(&mut self, now: SimTime) {
        if let Some(until) = self.degraded_until {
            if now >= until {
                self.degraded_until = None;
                trace!(
                    self.tracer,
                    TraceEvent::DegradedMode {
                        consumer: self.consumer.to_string(),
                        state: "exit".to_owned(),
                        at: now,
                    }
                );
            }
        }
    }

    fn pcie_to_host(&mut self, from: GpuRef, bytes: u64, start: SimTime) -> SimTime {
        let path = self.server.gpu_to_host_path(from.gpu);
        self.pcie_bytes_moved += bytes;
        self.transfers
            .borrow_mut()
            .schedule(&path, TransferPlan::coalesced(bytes), start)
            .end
    }

    fn pcie_from_host(&mut self, to: GpuRef, bytes: u64, start: SimTime) -> SimTime {
        let path = self.server.host_to_gpu_path(to.gpu);
        self.pcie_bytes_moved += bytes;
        self.transfers
            .borrow_mut()
            .schedule(&path, TransferPlan::coalesced(bytes), start)
            .end
    }

    fn trace_allocation(&self, site: &str, bytes: u64, at: SimTime) {
        self.tracer.incr(
            if site == "dram" {
                "offloader.dram_allocations"
            } else {
                "offloader.peer_allocations"
            },
            1,
        );
        trace!(
            self.tracer,
            TraceEvent::LeaseAllocated {
                consumer: self.consumer.to_string(),
                site: site.to_owned(),
                bytes,
                at,
            }
        );
    }

    /// Returns capacity to a lease, presenting our fencing epoch. While the
    /// coordinator is unreachable the free is deferred (the data move
    /// already happened; only the book-keeping waits for reconnection).
    fn free_lease(&mut self, lease: LeaseId, bytes: u64, now: SimTime) {
        if !self.coordinator.reachable(self.consumer.gpu, now) {
            self.deferred_frees.push((lease, bytes));
            self.tracer.incr("offloader.deferred_frees", 1);
            return;
        }
        if self
            .coordinator
            .free_fenced(lease, bytes, self.epoch, now)
            .is_err()
        {
            // Revoked underneath us, or fenced out by an epoch bump; either
            // way the coordinator no longer counts these bytes against us.
            self.tracer.incr("offloader.free_after_revoke", 1);
        }
    }

    /// Iteration boundary while the coordinator is unreachable: no control
    /// verb can land, so the consumer serves autonomously from the sites it
    /// already holds. After `degraded_window` of continuous outage every
    /// peer lease is conservatively revoked *locally* — the coordinator's
    /// watchdog may have expired it and re-granted the HBM, so the retained
    /// copy is rewritten to DRAM before anyone else can scribble on it.
    fn autonomous_boundary(&mut self, now: SimTime) -> SimTime {
        let mut resume = now;
        let since = *self.unreachable_since.get_or_insert(now);
        self.tracer.incr("offloader.autonomous_boundaries", 1);
        self.enter_degraded(now);
        if resume >= since + self.policy.degraded_window && !self.peer_bytes.is_empty() {
            let tracked: Vec<(LeaseId, GpuRef, u64)> = self
                .peer_bytes
                .iter()
                .map(|(l, (g, b))| (*l, *g, *b))
                .collect();
            for (lease, gpu, held) in tracked {
                self.peer_bytes.remove(&lease);
                self.lost_bytes += held;
                self.tracer.incr("offloader.local_revocations", 1);
                trace!(
                    self.tracer,
                    TraceEvent::LeaseReconciled {
                        producer: gpu.to_string(),
                        lease: lease.0,
                        bytes: held,
                        epoch: self.epoch,
                        outcome: "local-revoke".to_owned(),
                        at: resume,
                    }
                );
                self.note_failover(&format!("peer:{gpu}"), "dram", held, resume);
                let end = self.pcie_to_host(self.consumer, held, resume);
                self.dram_bytes += held;
                resume = resume.max(end);
                // If the lease is in fact still live when we reconnect in
                // the same epoch, the replayed free squares the books.
                self.deferred_frees.push((lease, held));
            }
        }
        resume
    }

    /// Splits an inbound read/swap across current storage sites,
    /// peer-resident bytes first (they are both faster and preferred).
    fn split_inbound(&self, bytes: u64) -> (Vec<(LeaseId, GpuRef, u64)>, u64) {
        let mut remaining = bytes;
        let mut from_peer = Vec::new();
        for (lease, (gpu, held)) in &self.peer_bytes {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(*held);
            if take > 0 {
                from_peer.push((*lease, *gpu, take));
                remaining -= take;
            }
        }
        let from_dram = remaining.min(self.dram_bytes);
        (from_peer, from_dram)
    }
}

impl Offloader for AquaOffloader {
    fn swap_out(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let start = now + self.gather_cost(bytes, chunks);
        // Autonomous mode: without the coordinator no lease can be granted,
        // so new allocations pin to DRAM (and stay pinned for the degraded
        // window after the control plane comes back).
        if !self.coordinator.reachable(self.consumer.gpu, now) {
            self.unreachable_since.get_or_insert(now);
            self.enter_degraded(now);
            let end = self.pcie_to_host(self.consumer, bytes, start);
            self.dram_bytes += bytes;
            self.trace_allocation("dram", bytes, now);
            return end;
        }
        // Degraded mode: a recent fabric failure pins new allocations to
        // DRAM so every swap does not re-probe a dead link.
        if self.is_degraded() {
            let end = self.pcie_to_host(self.consumer, bytes, start);
            self.dram_bytes += bytes;
            self.trace_allocation("dram", bytes, now);
            return end;
        }
        // Rung 1 — lease affinity: keep growing context on the producer
        // that already holds it (1:1 pairing; avoids fanning one consumer's
        // bytes across every lease on the server).
        let existing: Vec<(LeaseId, GpuRef)> =
            self.peer_bytes.iter().map(|(l, (g, _))| (*l, *g)).collect();
        for (lease, gpu) in existing {
            if self.coordinator.try_allocate_on(lease, bytes) {
                if let Some(end) = self.try_fabric(self.consumer, gpu, bytes, start) {
                    self.peer_bytes.get_mut(&lease).expect("tracked").1 += bytes;
                    self.trace_allocation(&format!("peer:{gpu}"), bytes, now);
                    return end;
                }
                // Fabric to that producer is gone: undo the reservation and
                // drop to the next rung.
                let _ = self.coordinator.free(lease, bytes);
                self.note_failover(&format!("peer:{gpu}"), "sibling", bytes, now);
                break;
            }
        }
        // Rung 2 — any lease the coordinator picks (possibly a sibling
        // producer reachable over a different set of ports).
        match self.coordinator.allocate(self.consumer, bytes) {
            AllocationSite::Peer { lease, gpu } => {
                if let Some(end) = self.try_fabric(self.consumer, gpu, bytes, start) {
                    let entry = self.peer_bytes.entry(lease).or_insert((gpu, 0));
                    entry.1 += bytes;
                    self.trace_allocation(&format!("peer:{gpu}"), bytes, now);
                    return end;
                }
                let _ = self.coordinator.free(lease, bytes);
                self.note_failover(&format!("peer:{gpu}"), "dram", bytes, now);
                // Rung 3 — host DRAM, and stay there for a while.
                self.enter_degraded(now);
                let end = self.pcie_to_host(self.consumer, bytes, start);
                self.dram_bytes += bytes;
                self.trace_allocation("dram", bytes, now);
                end
            }
            AllocationSite::Dram => {
                let end = self.pcie_to_host(self.consumer, bytes, start);
                self.dram_bytes += bytes;
                self.trace_allocation("dram", bytes, now);
                end
            }
        }
    }

    fn swap_in(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let (from_peer, from_dram) = self.split_inbound(bytes);
        let mut end = now;
        for (lease, gpu, take) in from_peer {
            let done = match self.try_fabric(gpu, self.consumer, take, now) {
                Some(done) => done,
                None => {
                    // Detour: producer HBM → host → consumer over PCIe.
                    self.note_failover(&format!("peer:{gpu}"), "dram-detour", take, now);
                    let mid = self.pcie_to_host(gpu, take, now);
                    self.pcie_from_host(self.consumer, take, mid)
                }
            };
            end = end.max(done);
            self.free_lease(lease, take, now);
            trace!(
                self.tracer,
                TraceEvent::LeaseFreed {
                    consumer: self.consumer.to_string(),
                    lease: lease.0,
                    bytes: take,
                    at: now,
                }
            );
            let held = self.peer_bytes.get(&lease).map_or(0, |(_, b)| *b);
            self.audit_outflow("peer", held, take, now);
            let entry = self.peer_bytes.get_mut(&lease).expect("tracked lease");
            entry.1 = entry.1.saturating_sub(take);
            if entry.1 == 0 {
                self.peer_bytes.remove(&lease);
            }
        }
        if from_dram > 0 {
            let done = self.pcie_from_host(self.consumer, from_dram, now);
            end = end.max(done);
            self.audit_outflow("dram", self.dram_bytes, from_dram, now);
            self.dram_bytes = self.dram_bytes.saturating_sub(from_dram);
        }
        // Scatter the staged buffer back into its per-layer tensors.
        end + self.gather_cost(bytes, chunks)
    }

    fn read_in(&mut self, bytes: u64, chunks: u64, now: SimTime) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let (from_peer, from_dram) = self.split_inbound(bytes);
        let mut end = now;
        let mut covered = 0u64;
        for (lease, gpu, take) in from_peer {
            match self.try_fabric(gpu, self.consumer, take, now) {
                Some(done) => end = end.max(done),
                None => {
                    // Detour over PCIe, and permanently migrate these bytes
                    // to DRAM: re-reading them should cost one DRAM fetch,
                    // not a dead-fabric probe plus a double PCIe hop.
                    self.note_failover(&format!("peer:{gpu}"), "dram", take, now);
                    let mid = self.pcie_to_host(gpu, take, now);
                    end = end.max(self.pcie_from_host(self.consumer, take, mid));
                    self.free_lease(lease, take, now);
                    let held = self.peer_bytes.get(&lease).map_or(0, |(_, b)| *b);
                    self.audit_outflow("peer", held, take, now);
                    let entry = self.peer_bytes.get_mut(&lease).expect("tracked lease");
                    entry.1 = entry.1.saturating_sub(take);
                    if entry.1 == 0 {
                        self.peer_bytes.remove(&lease);
                    }
                    self.dram_bytes += take;
                    self.enter_degraded(now);
                }
            }
            covered += take;
        }
        let dram_part = from_dram + bytes.saturating_sub(covered + from_dram);
        if dram_part > 0 {
            end = end.max(self.pcie_from_host(self.consumer, dram_part, now));
        }
        end + self.gather_cost(bytes, chunks)
    }

    fn on_iteration_boundary(&mut self, now: SimTime) -> SimTime {
        let mut resume = now;
        // 0. A stalled coordinator delays every control-plane verb below.
        if let Some(plan) = &self.fault_plan {
            let stall = plan.stall_at(now);
            if !stall.is_zero() {
                resume += stall;
            }
        }
        // 0b. Control-plane reachability: while the coordinator is crashed
        // or partitioned away, the consumer runs this boundary autonomously.
        if !self.coordinator.reachable(self.consumer.gpu, resume) {
            return self.autonomous_boundary(resume);
        }
        let was_dark = self.unreachable_since.take().is_some();
        // Drive the coordinator's failure watchdogs from the consumer's
        // clock (in a real deployment the coordinator has its own timer).
        self.coordinator.advance(resume);
        // Audited runs sweep the lease books at every boundary (no-op
        // unless the coordinator carries an auditor).
        self.coordinator.audit_books(resume);
        // 0c. Epoch fence: a bump means the coordinator crashed and rebuilt
        // its book. Frees naming old-epoch lease ids can never land; frees
        // deferred across a same-epoch outage replay now.
        let current = self.coordinator.epoch();
        let epoch_changed = current != self.epoch;
        if epoch_changed {
            if !self.deferred_frees.is_empty() {
                self.tracer.incr(
                    "offloader.dropped_stale_frees",
                    self.deferred_frees.len() as u64,
                );
                self.deferred_frees.clear();
            }
            self.epoch = current;
        } else if was_dark {
            for (lease, bytes) in std::mem::take(&mut self.deferred_frees) {
                if self
                    .coordinator
                    .free_fenced(lease, bytes, self.epoch, resume)
                    .is_err()
                {
                    self.tracer.incr("offloader.free_after_revoke", 1);
                }
            }
        }
        // 1. Stranded sweep: leases revoked underneath us (producer crash
        // or blown reclaim deadline). The peer copy is gone; re-materialise
        // the context in host DRAM, blocking, so no request is lost.
        let tracked: Vec<(LeaseId, GpuRef, u64)> = self
            .peer_bytes
            .iter()
            .map(|(l, (g, b))| (*l, *g, *b))
            .collect();
        for (lease, gpu, held) in tracked {
            match self.coordinator.lease_state(lease) {
                LeaseState::Revoked | LeaseState::Unknown => {
                    self.peer_bytes.remove(&lease);
                    // After a coordinator crash the peer copy is physically
                    // intact — only the metadata died. If the producer has
                    // re-registered in the new epoch, re-home the bytes onto
                    // its fresh lease instead of burning a PCIe rewrite.
                    if epoch_changed {
                        if let Some((_, new_lease)) = self.coordinator.rehome(gpu, held, resume) {
                            let entry = self.peer_bytes.entry(new_lease).or_insert((gpu, 0));
                            entry.1 += held;
                            self.tracer.incr("offloader.rehomed_bytes", held);
                            continue;
                        }
                    }
                    self.lost_bytes += held;
                    self.tracer.incr("offloader.stranded_bytes", held);
                    self.note_failover(&format!("peer:{gpu}"), "dram", held, resume);
                    // Rewrite the consumer's retained copy out to DRAM.
                    let end = self.pcie_to_host(self.consumer, held, resume);
                    self.dram_bytes += held;
                    self.enter_degraded(resume);
                    resume = resume.max(end);
                }
                _ => {}
            }
        }
        // 2. Blocking release of any lease being reclaimed.
        let leases: Vec<LeaseId> = self.peer_bytes.keys().copied().collect();
        for lease in leases {
            if self.coordinator.pending_reclaim(lease) == 0 {
                continue;
            }
            let (gpu, held) = self.peer_bytes.remove(&lease).expect("tracked lease");
            // Migrate producer HBM -> host DRAM over the producer's PCIe.
            let end = self.pcie_to_host(gpu, held, resume);
            if self.coordinator.release(lease, held, end).is_err() {
                // Force-revoked while we migrated; the producer already got
                // its memory back, our DRAM copy is still the live one.
                self.tracer.incr("offloader.free_after_revoke", 1);
            }
            self.dram_bytes += held;
            self.releases += 1;
            self.tracer.incr("offloader.releases", 1);
            trace!(
                self.tracer,
                TraceEvent::ReclaimReleased {
                    producer: gpu.to_string(),
                    lease: lease.0,
                    bytes: held,
                    at: end,
                }
            );
            resume = resume.max(end);
        }
        // 3. Degraded mode ends only at a boundary, and promotion is
        // skipped while it lasts (new peer placements are suspect).
        self.maybe_exit_degraded(resume);
        // 4. Background promotion of DRAM-resident bytes back to a peer.
        if self.dram_bytes > 0 && !self.is_degraded() {
            let available = self.coordinator.available_on_server(self.consumer.server);
            let promote = self.dram_bytes.min(available);
            if promote > 0 {
                if let AllocationSite::Peer { lease, gpu } =
                    self.coordinator.allocate(self.consumer, promote)
                {
                    // Host -> producer over the producer's PCIe; does not
                    // block the consumer's inference loop.
                    let _ = self.pcie_from_host(gpu, promote, resume);
                    self.dram_bytes -= promote;
                    let entry = self.peer_bytes.entry(lease).or_insert((gpu, 0));
                    entry.1 += promote;
                    self.tracer.incr("offloader.promotions", 1);
                    trace!(
                        self.tracer,
                        TraceEvent::LeasePromoted {
                            consumer: self.consumer.to_string(),
                            lease: lease.0,
                            bytes: promote,
                            at: resume,
                        }
                    );
                }
            }
        }
        resume
    }

    fn location(&self) -> OffloadLocation {
        match (self.peer_total() > 0, self.dram_bytes > 0) {
            (true, false) => OffloadLocation::PeerGpu,
            (false, true) | (false, false) => OffloadLocation::HostDram,
            (true, true) => OffloadLocation::Mixed,
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::gpu::{GpuId, GpuSpec};
    use aqua_sim::link::bytes::{gib, mib};
    use aqua_sim::topology::ServerTopology;

    fn setup(lease_gib: u64) -> (AquaOffloader, Arc<Coordinator>) {
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        if lease_gib > 0 {
            coord.lease(GpuRef::single(GpuId(1)), gib(lease_gib));
        }
        let off = AquaOffloader::new(GpuRef::single(GpuId(0)), Arc::clone(&coord), server, xfer);
        (off, coord)
    }

    #[test]
    fn swap_out_lands_on_peer_when_leased() {
        let (mut off, coord) = setup(20);
        let end = off.swap_out(gib(2), 1024, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(2));
        assert_eq!(off.dram_total(), 0);
        assert_eq!(coord.used_bytes(), gib(2));
        // ~2 GiB at 250 GB/s + gather ≈ 11 ms.
        assert!(end.as_secs_f64() < 0.03, "end = {end}");
        assert_eq!(off.location(), OffloadLocation::PeerGpu);
    }

    #[test]
    fn falls_back_to_dram_without_lease() {
        let (mut off, _) = setup(0);
        let end = off.swap_out(gib(2), 1024, SimTime::ZERO);
        assert_eq!(off.peer_total(), 0);
        assert_eq!(off.dram_total(), gib(2));
        // 2 GiB at 25 GB/s ≈ 86 ms.
        assert!(end.as_secs_f64() > 0.05, "end = {end}");
        assert_eq!(off.location(), OffloadLocation::HostDram);
    }

    #[test]
    fn overflow_splits_across_peer_and_dram() {
        let (mut off, _) = setup(1);
        off.swap_out(gib(1), 1, SimTime::ZERO);
        off.swap_out(gib(1), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(1));
        assert_eq!(off.dram_total(), gib(1));
        assert_eq!(off.location(), OffloadLocation::Mixed);
    }

    #[test]
    fn swap_in_prefers_peer_and_frees_lease() {
        let (mut off, coord) = setup(4);
        off.swap_out(gib(2), 1, SimTime::ZERO);
        let end = off.swap_in(gib(2), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), 0);
        assert_eq!(coord.used_bytes(), 0);
        assert!(end.as_secs_f64() < 0.05);
    }

    #[test]
    fn read_in_does_not_consume_occupancy() {
        let (mut off, coord) = setup(4);
        off.prestage(mib(320));
        let before = coord.used_bytes();
        let t1 = off.read_in(mib(320), 256, SimTime::ZERO);
        let t2 = off.read_in(mib(320), 256, t1);
        assert!(t2 > t1);
        assert_eq!(coord.used_bytes(), before, "reads leave the store intact");
        assert_eq!(off.peer_total(), mib(320));
    }

    #[test]
    fn reclaim_blocks_and_migrates_to_dram() {
        let (mut off, coord) = setup(10);
        off.swap_out(gib(4), 1, SimTime::ZERO);
        coord.reclaim_request(GpuRef::single(GpuId(1)));
        let t0 = SimTime::from_secs(1);
        let resume = off.on_iteration_boundary(t0);
        // 4 GiB over PCIe ≈ 170 ms: the consumer is blocked meanwhile.
        assert!(resume > t0 + aqua_sim::time::SimDuration::from_millis(100));
        assert_eq!(off.peer_total(), 0);
        assert_eq!(off.dram_total(), gib(4));
        assert_eq!(off.releases(), 1);
        // Producer sees the release.
        assert!(matches!(
            coord.reclaim_status(GpuRef::single(GpuId(1))),
            crate::coordinator::ReclaimStatus::Released { bytes, .. } if bytes == gib(10)
        ));
    }

    #[test]
    fn dram_bytes_promote_back_when_lease_returns() {
        let (mut off, coord) = setup(0);
        off.swap_out(gib(2), 1, SimTime::ZERO);
        assert_eq!(off.dram_total(), gib(2));
        // A producer appears.
        coord.lease(GpuRef::single(GpuId(1)), gib(20));
        let resume = off.on_iteration_boundary(SimTime::from_secs(1));
        assert_eq!(resume, SimTime::from_secs(1), "promotion is non-blocking");
        assert_eq!(off.dram_total(), 0);
        assert_eq!(off.peer_total(), gib(2));
    }

    #[test]
    fn traced_offloader_journals_lease_lifecycle() {
        use aqua_telemetry::JournalTracer;

        let journal = Arc::new(JournalTracer::new());
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        coord.lease(GpuRef::single(GpuId(1)), gib(10));
        let mut off =
            AquaOffloader::new(GpuRef::single(GpuId(0)), Arc::clone(&coord), server, xfer)
                .with_tracer(journal.clone());

        off.swap_out(gib(2), 1, SimTime::ZERO);
        off.swap_in(gib(2), 1, SimTime::from_secs(1));
        coord.reclaim_request(GpuRef::single(GpuId(1)));
        off.swap_out(gib(1), 1, SimTime::from_secs(2)); // reclaiming: lands in DRAM
        off.on_iteration_boundary(SimTime::from_secs(3));

        let events = journal.events();
        let has = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().any(f);
        assert!(has(
            &|e| matches!(e, TraceEvent::LeaseAllocated { site, .. } if site == "peer:s0/gpu1")
        ));
        assert!(has(
            &|e| matches!(e, TraceEvent::LeaseAllocated { site, .. } if site == "dram")
        ));
        assert!(has(
            &|e| matches!(e, TraceEvent::LeaseFreed { bytes, .. } if *bytes == gib(2))
        ));
        assert_eq!(journal.registry().counter("offloader.peer_allocations"), 1);
        assert_eq!(journal.registry().counter("offloader.dram_allocations"), 1);
    }

    #[test]
    fn zero_byte_ops_are_instant() {
        let (mut off, _) = setup(1);
        let t = SimTime::from_secs(3);
        assert_eq!(off.swap_out(0, 0, t), t);
        assert_eq!(off.swap_in(0, 0, t), t);
        assert_eq!(off.read_in(0, 0, t), t);
    }

    fn faulty_setup(lease_gib: u64, plan: FaultPlan) -> (AquaOffloader, Arc<Coordinator>) {
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        if lease_gib > 0 {
            coord.lease(GpuRef::single(GpuId(1)), gib(lease_gib));
        }
        let plan = Arc::new(plan);
        xfer.borrow_mut().set_fault_plan(Arc::clone(&plan));
        let off = AquaOffloader::new(GpuRef::single(GpuId(0)), Arc::clone(&coord), server, xfer)
            .with_fault_plan(plan);
        (off, coord)
    }

    #[test]
    fn fabric_outage_fails_over_to_dram_and_degrades() {
        let plan = FaultPlan::new().gpu_crash(GpuId(1), SimTime::ZERO, SimTime::from_secs(100));
        let (mut off, coord) = faulty_setup(20, plan);
        off.swap_out(gib(1), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), 0);
        assert_eq!(off.dram_total(), gib(1), "ladder bottoms out in DRAM");
        assert_eq!(coord.used_bytes(), 0, "failed peer reservation was undone");
        assert!(off.is_degraded());
        assert_eq!(off.failovers(), 1);
        assert_eq!(off.retries(), 2, "full retry budget was spent");
        // Degraded: the next swap goes straight to DRAM, no new failover.
        off.swap_out(gib(1), 1, SimTime::from_secs(1));
        assert_eq!(off.dram_total(), gib(2));
        assert_eq!(off.failovers(), 1);
        assert_eq!(off.location(), OffloadLocation::HostDram);
    }

    #[test]
    fn short_flap_is_ridden_out_by_retries() {
        // A 1 ms flap: the 2 ms backoff lands the first retry after it.
        let plan = FaultPlan::new().gpu_crash(
            GpuId(1),
            SimTime::ZERO,
            SimTime::ZERO + aqua_sim::time::SimDuration::from_millis(1),
        );
        let (mut off, _) = faulty_setup(20, plan);
        off.swap_out(gib(1), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(1), "retry rode out the flap");
        assert_eq!(off.retries(), 1);
        assert_eq!(off.failovers(), 0);
        assert!(!off.is_degraded());
    }

    #[test]
    fn degraded_mode_expires_and_promotes_back() {
        let plan = FaultPlan::new().gpu_crash(GpuId(1), SimTime::ZERO, SimTime::from_secs(10));
        let (mut off, _) = faulty_setup(20, plan);
        off.swap_out(gib(1), 1, SimTime::ZERO);
        assert!(off.is_degraded());
        // Still inside the 30 s degraded window: pinned to DRAM.
        off.on_iteration_boundary(SimTime::from_secs(20));
        assert!(off.is_degraded());
        assert_eq!(off.dram_total(), gib(1));
        // Window over: degraded mode lifts and the bytes promote back.
        off.on_iteration_boundary(SimTime::from_secs(40));
        assert!(!off.is_degraded());
        assert_eq!(off.dram_total(), 0);
        assert_eq!(off.peer_total(), gib(1));
    }

    #[test]
    fn stranded_lease_bytes_rematerialise_in_dram() {
        use crate::coordinator::FailureConfig;

        let (mut off, coord) = setup(10);
        coord.set_failure_config(FailureConfig::chaos());
        off.swap_out(gib(2), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(2));
        // First boundary arms the heartbeat watchdog; the producer then
        // goes silent and the lease expires underneath the consumer.
        off.on_iteration_boundary(SimTime::from_secs(5));
        assert_eq!(off.peer_total(), gib(2));
        let resume = off.on_iteration_boundary(SimTime::from_secs(30));
        assert_eq!(off.peer_total(), 0);
        assert_eq!(off.dram_total(), gib(2), "context re-materialised in DRAM");
        assert_eq!(off.lost_bytes(), gib(2));
        assert!(off.failovers() >= 1);
        assert!(off.is_degraded());
        assert!(
            resume > SimTime::from_secs(30),
            "re-materialisation blocks the boundary"
        );
    }

    #[test]
    fn backoff_doubles_then_saturates_instead_of_overflowing() {
        let policy = FailoverPolicy::default();
        // Small attempts keep the exact doubling ladder the retry tests pin.
        assert_eq!(policy.backoff_for(1), SimDuration::from_millis(2));
        assert_eq!(policy.backoff_for(2), SimDuration::from_millis(4));
        assert_eq!(policy.backoff_for(3), SimDuration::from_millis(8));
        // 2 ms << 44 overflows u64 nanoseconds; the boundary and everything
        // past it saturate instead of wrapping around to a tiny wait.
        let last_exact = policy.backoff_for(44);
        assert_eq!(
            last_exact,
            SimDuration::from_nanos(2_000_000u64 << 43),
            "attempt 44 is the last exactly-representable doubling"
        );
        for attempt in [45, 52, 53, 64, 65, 1000, u32::MAX] {
            let b = policy.backoff_for(attempt);
            assert_eq!(b, SimDuration::from_nanos(u64::MAX), "attempt {attempt}");
        }
        // A pathological base saturates on the multiply, not just the shift.
        let big = FailoverPolicy {
            backoff: SimDuration::from_nanos(u64::MAX / 2),
            ..FailoverPolicy::default()
        };
        assert_eq!(big.backoff_for(3), SimDuration::from_nanos(u64::MAX));
        // Monotonicity across the boundary: later attempts never wait less.
        let mut prev = SimDuration::ZERO;
        for attempt in 1..80 {
            let b = policy.backoff_for(attempt);
            assert!(b >= prev, "backoff regressed at attempt {attempt}");
            prev = b;
        }
    }

    #[test]
    fn audited_offloader_run_stays_clean() {
        use aqua_sim::audit::Auditor;

        let aud = Auditor::collecting();
        let (mut off, coord) = setup(10);
        coord.set_auditor(aud.clone());
        off = off.with_auditor(aud.clone());
        off.swap_out(gib(2), 64, SimTime::ZERO);
        off.swap_in(gib(1), 64, SimTime::from_secs(1));
        off.on_iteration_boundary(SimTime::from_secs(2));
        off.swap_in(gib(1), 64, SimTime::from_secs(3));
        assert!(
            aud.is_clean(),
            "legit offload traffic must not trip the audit: {:?}",
            aud.violations()
        );
    }

    #[test]
    fn audit_catches_coordinator_double_free() {
        use aqua_sim::audit::Auditor;

        let aud = Auditor::collecting();
        let (_, coord) = setup(10);
        coord.set_auditor(aud.clone());
        let lease = coord.lease(GpuRef::single(GpuId(1)), gib(1));
        assert!(coord.try_allocate_on(lease, mib(64)));
        assert!(coord.free(lease, mib(64)).is_ok());
        // Second free of the same bytes: the books would go negative.
        assert!(coord.free(lease, mib(64)).is_err());
        let v = aud.first().expect("double free recorded");
        assert_eq!(v.kind(), "double_free");
    }

    #[test]
    fn unreachable_coordinator_defers_frees_and_pins_swaps_to_dram() {
        use aqua_telemetry::JournalTracer;

        // Consumer GpuId(1) loses the coordinator between t=10s and t=40s
        // (partition split 1: only gpu0 keeps control-plane reachability).
        let journal = Arc::new(JournalTracer::new());
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        coord.set_fault_plan(Arc::new(FaultPlan::new().partition(
            1,
            SimTime::from_secs(10),
            SimTime::from_secs(40),
        )));
        coord.lease(GpuRef::single(GpuId(0)), gib(20));
        let mut off =
            AquaOffloader::new(GpuRef::single(GpuId(1)), Arc::clone(&coord), server, xfer)
                .with_tracer(journal.clone());

        off.swap_out(gib(2), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(2));
        // Inside the partition window the data plane keeps working — the
        // fabric path is GPU-to-GPU — but the free cannot land.
        off.swap_in(gib(1), 1, SimTime::from_secs(12));
        assert_eq!(off.peer_total(), gib(1));
        assert_eq!(coord.used_bytes(), gib(2), "free deferred, not lost");
        assert_eq!(journal.registry().counter("offloader.deferred_frees"), 1);
        // New allocations pin to DRAM while the coordinator is dark.
        off.swap_out(gib(1), 1, SimTime::from_secs(13));
        assert_eq!(off.dram_total(), gib(1));
        assert!(off.is_degraded());
        // First boundary after the heal replays the deferred free (same
        // epoch: the lease id is still honoured).
        off.on_iteration_boundary(SimTime::from_secs(41));
        assert_eq!(coord.used_bytes(), gib(1));
        assert_eq!(coord.epoch(), 1);
    }

    #[test]
    fn prolonged_outage_locally_revokes_peer_leases() {
        use aqua_telemetry::JournalTracer;

        let journal = Arc::new(JournalTracer::new());
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        coord.set_fault_plan(Arc::new(FaultPlan::new().partition(
            1,
            SimTime::from_secs(10),
            SimTime::from_secs(100),
        )));
        coord.lease(GpuRef::single(GpuId(0)), gib(20));
        let mut off =
            AquaOffloader::new(GpuRef::single(GpuId(1)), Arc::clone(&coord), server, xfer)
                .with_tracer(journal.clone());
        off.swap_out(gib(2), 1, SimTime::ZERO);

        // First dark boundary starts the outage clock; nothing is revoked.
        off.on_iteration_boundary(SimTime::from_secs(12));
        assert_eq!(off.peer_total(), gib(2));
        // 30 s of continuous outage: the lease TTL at the coordinator has
        // conservatively lapsed, so the retained copy rewrites to DRAM.
        let resume = off.on_iteration_boundary(SimTime::from_secs(45));
        assert_eq!(off.peer_total(), 0);
        assert_eq!(off.dram_total(), gib(2));
        assert_eq!(off.lost_bytes(), gib(2));
        assert!(
            resume > SimTime::from_secs(45),
            "rewrite blocks the boundary"
        );
        assert_eq!(journal.registry().counter("offloader.local_revocations"), 1);
        assert!(journal.events().iter().any(|e| matches!(
            e,
            TraceEvent::LeaseReconciled { outcome, bytes, .. }
                if outcome == "local-revoke" && *bytes == gib(2)
        )));
        // Reconnect in the same epoch: the lease was in fact still live, so
        // the replayed free squares the books — and with the degraded window
        // over, the DRAM copy promotes straight back to the peer. The
        // coordinator and the consumer agree again: 2 GiB held, on a lease.
        off.on_iteration_boundary(SimTime::from_secs(101));
        assert_eq!(off.dram_total(), 0);
        assert_eq!(off.peer_total(), gib(2));
        assert_eq!(coord.used_bytes(), gib(2));
        assert_eq!(
            journal.registry().counter("offloader.free_after_revoke"),
            0,
            "the deferred free landed cleanly"
        );
    }

    #[test]
    fn epoch_bump_rehomes_stranded_bytes_onto_the_new_lease() {
        use aqua_sim::audit::Auditor;

        let aud = Auditor::collecting();
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let xfer = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        coord.set_auditor(aud.clone());
        let producer = GpuRef::single(GpuId(1));
        coord.set_fault_plan(Arc::new(
            FaultPlan::new().coordinator_crash(SimTime::from_secs(10), SimDuration::from_secs(20)),
        ));
        coord.lease(producer, gib(10));
        let mut off =
            AquaOffloader::new(GpuRef::single(GpuId(0)), Arc::clone(&coord), server, xfer)
                .with_auditor(aud.clone());
        off.swap_out(gib(2), 1, SimTime::ZERO);
        assert_eq!(off.peer_total(), gib(2));

        // Replay the crash window, then the producer re-registers its full
        // inventory in epoch 2 (what its informer does on the first tick).
        coord.advance(SimTime::from_secs(31));
        assert_eq!(coord.epoch(), 2);
        coord
            .resync_report(producer, gib(10), 2, SimTime::from_secs(31))
            .unwrap();
        // The consumer's boundary finds its old lease dead, but re-homes the
        // bytes onto the producer's fresh lease — no data ever moved.
        off.on_iteration_boundary(SimTime::from_secs(32));
        assert_eq!(off.peer_total(), gib(2), "bytes re-homed, not rewritten");
        assert_eq!(off.dram_total(), 0);
        assert_eq!(coord.used_bytes(), gib(2));
        let (recovered, first_regrant) = coord.recovery_metrics();
        assert!(recovered.is_some());
        assert!(first_regrant.is_some());
        assert!(aud.is_clean(), "{:?}", aud.violations());
    }

    #[test]
    fn gather_makes_scattered_cheap() {
        // Same payload, wildly different chunk counts: AQUA coalesces, so
        // the cost difference is just the staging sweep.
        let (mut off1, _) = setup(10);
        let t_few = off1.swap_out(mib(320), 1, SimTime::ZERO);
        let (mut off2, _) = setup(10);
        let t_many = off2.swap_out(mib(320), 100_000, SimTime::ZERO);
        let ratio = t_many.as_secs_f64() / t_few.as_secs_f64();
        assert!(
            ratio < 1.5,
            "coalescing keeps scatter cheap, ratio {ratio:.2}"
        );
    }
}
