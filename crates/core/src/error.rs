//! Typed control-plane errors.
//!
//! The coordinator's verbs used to panic on any abnormal state; a production
//! control plane cannot. [`AquaError`] covers every fallible control-plane
//! path in this crate — unknown/revoked leases, double frees, a dead
//! coordinator service, protocol mismatches over the message envelope —
//! while true invariant violations (e.g. a placer pairing two GPUs on
//! different servers) remain panics.

use crate::coordinator::LeaseId;

/// A control-plane failure that callers are expected to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AquaError {
    /// The lease id is not (or no longer) known to the coordinator.
    UnknownLease(LeaseId),
    /// The lease was revoked (reclaim completed, heartbeat expiry, or a
    /// forced revocation) before the call arrived.
    LeaseRevoked(LeaseId),
    /// A free/release exceeded the bytes actually in use on the lease.
    OverFree {
        /// The offending lease.
        lease: LeaseId,
        /// Bytes in use when the call arrived.
        used: u64,
        /// Bytes the caller tried to return.
        requested: u64,
    },
    /// The verb carried an epoch older than the coordinator's current one
    /// — the caller's view predates a crash/recovery fence and must be
    /// resynced before any mutation is accepted.
    StaleEpoch {
        /// The epoch the caller held.
        held: u64,
        /// The epoch in force at the coordinator.
        current: u64,
    },
    /// The coordinator service is shut down or its thread is gone.
    ServiceUnavailable,
    /// The service answered with a response variant the verb cannot accept.
    ProtocolViolation {
        /// The response variant the wrapper expected.
        expected: &'static str,
        /// Debug rendering of what actually arrived.
        got: String,
    },
    /// The remote side reported an error through the message envelope.
    Remote(String),
}

impl std::fmt::Display for AquaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AquaError::UnknownLease(lease) => write!(f, "unknown lease {}", lease.0),
            AquaError::LeaseRevoked(lease) => write!(f, "lease {} is revoked", lease.0),
            AquaError::OverFree {
                lease,
                used,
                requested,
            } => write!(
                f,
                "over-free on lease {}: {requested} bytes requested, {used} in use",
                lease.0
            ),
            AquaError::StaleEpoch { held, current } => {
                write!(f, "stale epoch {held} (coordinator is at epoch {current})")
            }
            AquaError::ServiceUnavailable => write!(f, "coordinator service unavailable"),
            AquaError::ProtocolViolation { expected, got } => {
                write!(f, "protocol violation: expected {expected}, got {got}")
            }
            AquaError::Remote(msg) => write!(f, "remote error: {msg}"),
        }
    }
}

impl std::error::Error for AquaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AquaError::OverFree {
            lease: LeaseId(3),
            used: 10,
            requested: 12,
        };
        let s = e.to_string();
        assert!(
            s.contains("lease 3") && s.contains("12") && s.contains("10"),
            "{s}"
        );
        assert!(AquaError::ServiceUnavailable
            .to_string()
            .contains("unavailable"));
    }
}
