//! The per-GPU AQUA-LIB instance (§3, §B): the API an ML model imports.
//!
//! "An instance of AQUA-LIB runs on each GPU of a multi-GPU server." The
//! engine-facing offload path lives in [`crate::offloader`]; this module is
//! the *model-facing* API the paper describes — explicit, tensor-granular:
//!
//! * `to_responsive_tensor(tensor)` wraps a tensor and offloads it to
//!   wherever the coordinator places it (peer GPU, else DRAM);
//! * `to_torch_tensor(id)` resolves the current pointer (stale after any
//!   migration — a checked error instead of a segfault);
//! * `aqua.respond()` is the iteration boundary: pending producer reclaims
//!   are served (blocking), and DRAM-resident tensors are promoted back to
//!   a peer when lease capacity reappears (non-blocking).
//!
//! Every movement is charged on the server's shared [`TransferEngine`] with
//! the gather-coalesce strategy, so AQUA-LIB timing composes with whatever
//! engines run beside it.

use crate::coordinator::{AllocationSite, Coordinator, GpuRef, LeaseId};
use crate::tensor::{StaleTensorRef, TensorId, TensorLocation, TensorRef, TensorTable};
use aqua_sim::time::SimTime;
use aqua_sim::topology::ServerTopology;
use aqua_sim::transfer::{staging_time, TransferEngine, TransferPlan};
use bytes::Bytes;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// A per-GPU AQUA-LIB instance.
///
/// # Example
///
/// ```
/// use aqua_core::aqualib::AquaLib;
/// use aqua_core::coordinator::{Coordinator, GpuRef};
/// use aqua_core::tensor::TensorLocation;
/// use aqua_sim::prelude::*;
/// use bytes::Bytes;
/// use std::{cell::RefCell, rc::Rc, sync::Arc};
///
/// let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
/// let transfers = Rc::new(RefCell::new(TransferEngine::new()));
/// let coord = Arc::new(Coordinator::new());
/// coord.lease(GpuRef::single(GpuId(1)), 1 << 30);
///
/// let mut lib = AquaLib::new(GpuRef::single(GpuId(0)), coord, server, transfers);
/// let (id, _done) = lib.to_responsive_tensor(Bytes::from(vec![7u8; 4096]), SimTime::ZERO);
/// let ptr = lib.to_torch_tensor(id).unwrap();
/// assert_eq!(ptr.location(), TensorLocation::PeerGpu { gpu: 1 });
/// assert_eq!(lib.read(ptr).unwrap().len(), 4096);
/// ```
pub struct AquaLib {
    gpu: GpuRef,
    coordinator: Arc<Coordinator>,
    server: Rc<ServerTopology>,
    transfers: Rc<RefCell<TransferEngine>>,
    tensors: TensorTable,
    /// Lease backing each peer-resident tensor.
    backing: HashMap<TensorId, LeaseId>,
    migrations: u64,
}

impl std::fmt::Debug for AquaLib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AquaLib")
            .field("gpu", &self.gpu)
            .field("tensors", &self.tensors.len())
            .field("migrations", &self.migrations)
            .finish()
    }
}

impl AquaLib {
    /// Creates the AQUA-LIB instance for `gpu`.
    pub fn new(
        gpu: GpuRef,
        coordinator: Arc<Coordinator>,
        server: Rc<ServerTopology>,
        transfers: Rc<RefCell<TransferEngine>>,
    ) -> Self {
        AquaLib {
            gpu,
            coordinator,
            server,
            transfers,
            tensors: TensorTable::new(),
            backing: HashMap::new(),
            migrations: 0,
        }
    }

    /// Number of live AQUA tensors.
    pub fn tensor_count(&self) -> usize {
        self.tensors.len()
    }

    /// Total migrations performed across all tensors.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Bytes currently stored at each location class:
    /// `(local, peer, dram)`.
    pub fn footprint(&self) -> (u64, u64, u64) {
        let local = self.tensors.bytes_at(TensorLocation::LocalHbm);
        let dram = self.tensors.bytes_at(TensorLocation::HostDram);
        let mut peer = 0;
        for g in 0..self.server.gpu_count() {
            peer += self.tensors.bytes_at(TensorLocation::PeerGpu { gpu: g });
        }
        (local, peer, dram)
    }

    fn copy_local_to(&mut self, to: TensorLocation, bytes: u64, now: SimTime) -> SimTime {
        self.copy_between(TensorLocation::LocalHbm, to, bytes, now)
    }

    /// Charges the transfer for moving `bytes` between two locations and
    /// returns its completion time.
    fn copy_between(
        &mut self,
        from: TensorLocation,
        to: TensorLocation,
        bytes: u64,
        now: SimTime,
    ) -> SimTime {
        use TensorLocation as L;
        let plan = TransferPlan::coalesced(bytes);
        let mut xfer = self.transfers.borrow_mut();
        let hbm_bw = self.server.gpu(self.gpu.gpu).spec.hbm_bandwidth;
        let start = now + staging_time(bytes, hbm_bw); // gather/scatter kernel
        let end = match (from, to) {
            (L::LocalHbm, L::PeerGpu { gpu }) => {
                let path = self
                    .server
                    .gpu_to_gpu_path(self.gpu.gpu, aqua_sim::gpu::GpuId(gpu))
                    .expect("peer is a distinct same-server GPU");
                xfer.schedule(&path, plan, start).end
            }
            (L::PeerGpu { gpu }, L::LocalHbm) => {
                let path = self
                    .server
                    .gpu_to_gpu_path(aqua_sim::gpu::GpuId(gpu), self.gpu.gpu)
                    .expect("peer is a distinct same-server GPU");
                xfer.schedule(&path, plan, start).end
            }
            (L::LocalHbm, L::HostDram) => {
                let path = self.server.gpu_to_host_path(self.gpu.gpu);
                xfer.schedule(&path, plan, start).end
            }
            (L::HostDram, L::LocalHbm) => {
                let path = self.server.host_to_gpu_path(self.gpu.gpu);
                xfer.schedule(&path, plan, start).end
            }
            (L::PeerGpu { gpu }, L::HostDram) => {
                // Producer HBM -> host, over the producer's PCIe.
                let path = self.server.gpu_to_host_path(aqua_sim::gpu::GpuId(gpu));
                xfer.schedule(&path, plan, start).end
            }
            (L::HostDram, L::PeerGpu { gpu }) => {
                let path = self.server.host_to_gpu_path(aqua_sim::gpu::GpuId(gpu));
                xfer.schedule(&path, plan, start).end
            }
            (a, b) => panic!("degenerate move {a} -> {b}"),
        };
        end
    }

    /// Wraps `payload` as an AQUA tensor and offloads it to the location
    /// the coordinator chooses. Returns the tensor id and the time the
    /// offload completes.
    pub fn to_responsive_tensor(&mut self, payload: Bytes, now: SimTime) -> (TensorId, SimTime) {
        let bytes = payload.len() as u64;
        let site = self.coordinator.allocate(self.gpu, bytes);
        match site {
            AllocationSite::Peer { lease, gpu } => {
                let to = TensorLocation::PeerGpu { gpu: gpu.gpu.0 };
                let done = self.copy_local_to(to, bytes, now);
                let id = self.tensors.to_responsive_tensor(payload, to);
                self.backing.insert(id, lease);
                (id, done)
            }
            AllocationSite::Dram => {
                let done = self.copy_local_to(TensorLocation::HostDram, bytes, now);
                let id = self
                    .tensors
                    .to_responsive_tensor(payload, TensorLocation::HostDram);
                (id, done)
            }
        }
    }

    /// Resolves the current pointer for a tensor.
    pub fn to_torch_tensor(&self, id: TensorId) -> Option<TensorRef> {
        self.tensors.to_torch_tensor(id)
    }

    /// Reads a tensor's payload through a resolved pointer.
    ///
    /// # Errors
    ///
    /// Returns [`StaleTensorRef`] if the tensor migrated since the pointer
    /// was taken.
    pub fn read(&self, r: TensorRef) -> Result<Bytes, StaleTensorRef> {
        self.tensors.read(r)
    }

    /// Frees a tensor, returning lease capacity if it was peer-resident.
    pub fn free(&mut self, id: TensorId, _now: SimTime) -> Option<u64> {
        let bytes = self.tensors.free(id)?;
        if let Some(lease) = self.backing.remove(&id) {
            // A lease revoked underneath us already took the bytes back.
            let _ = self.coordinator.free(lease, bytes);
        }
        Some(bytes)
    }

    /// `aqua.respond()`: serves pending reclaims (blocking — returns when
    /// the engine may resume) and promotes DRAM tensors back to peers when
    /// capacity is available (non-blocking).
    pub fn respond(&mut self, now: SimTime) -> SimTime {
        let mut resume = now;

        // 1. Reclaims: migrate every tensor on a reclaiming lease to DRAM.
        let affected: Vec<(TensorId, LeaseId)> = self
            .backing
            .iter()
            .filter(|(_, lease)| self.coordinator.pending_reclaim(**lease) > 0)
            .map(|(id, lease)| (*id, *lease))
            .collect();
        let mut released: HashMap<LeaseId, (u64, SimTime)> = HashMap::new();
        for (id, lease) in affected {
            let from = self
                .tensors
                .get(id)
                .map(|t| t.location())
                .unwrap_or(TensorLocation::HostDram);
            let bytes = self.tensors.get(id).map(|t| t.len() as u64).unwrap_or(0);
            let done = self.copy_between(from, TensorLocation::HostDram, bytes, resume);
            self.tensors.migrate(id, TensorLocation::HostDram);
            self.backing.remove(&id);
            self.migrations += 1;
            let entry = released.entry(lease).or_insert((0, done));
            entry.0 += bytes;
            entry.1 = entry.1.max(done);
            resume = resume.max(done);
        }
        for (lease, (bytes, at)) in released {
            // A force-revocation racing the migration means the coordinator
            // already returned the bytes; the migration itself still stands.
            let _ = self.coordinator.release(lease, bytes, at);
        }

        // 2. Promotion: DRAM tensors move back to a peer in the background.
        for id in self.tensors.ids_at(TensorLocation::HostDram) {
            let bytes = self.tensors.get(id).map(|t| t.len() as u64).unwrap_or(0);
            match self.coordinator.allocate(self.gpu, bytes) {
                AllocationSite::Peer { lease, gpu } => {
                    let to = TensorLocation::PeerGpu { gpu: gpu.gpu.0 };
                    let _ = self.copy_between(TensorLocation::HostDram, to, bytes, resume);
                    self.tensors.migrate(id, to);
                    self.backing.insert(id, lease);
                    self.migrations += 1;
                }
                AllocationSite::Dram => break,
            }
        }
        resume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::gpu::{GpuId, GpuSpec};
    use aqua_sim::link::bytes::{gib, mib};

    fn setup(lease_gib: u64) -> (AquaLib, Arc<Coordinator>) {
        let server = Rc::new(ServerTopology::nvlink_pair(GpuSpec::a100_80g()));
        let transfers = Rc::new(RefCell::new(TransferEngine::new()));
        let coord = Arc::new(Coordinator::new());
        if lease_gib > 0 {
            coord.lease(GpuRef::single(GpuId(1)), gib(lease_gib));
        }
        let lib = AquaLib::new(
            GpuRef::single(GpuId(0)),
            Arc::clone(&coord),
            server,
            transfers,
        );
        (lib, coord)
    }

    fn payload(mib_count: usize) -> Bytes {
        Bytes::from(vec![0x5A; mib_count << 20])
    }

    #[test]
    fn tensors_land_on_peer_when_leased() {
        let (mut lib, coord) = setup(10);
        let (id, done) = lib.to_responsive_tensor(payload(512), SimTime::ZERO);
        assert!(
            done.as_secs_f64() < 0.01,
            "512 MiB over NVLink, done {done}"
        );
        let ptr = lib.to_torch_tensor(id).unwrap();
        assert_eq!(ptr.location(), TensorLocation::PeerGpu { gpu: 1 });
        assert_eq!(coord.used_bytes(), mib(512));
        let (_, peer, dram) = lib.footprint();
        assert_eq!(peer, mib(512));
        assert_eq!(dram, 0);
    }

    #[test]
    fn fallback_to_dram_and_promotion() {
        let (mut lib, coord) = setup(0);
        let (id, _) = lib.to_responsive_tensor(payload(256), SimTime::ZERO);
        assert_eq!(
            lib.to_torch_tensor(id).unwrap().location(),
            TensorLocation::HostDram
        );
        // A producer appears; respond() promotes.
        coord.lease(GpuRef::single(GpuId(1)), gib(4));
        let resume = lib.respond(SimTime::from_secs(1));
        assert_eq!(resume, SimTime::from_secs(1), "promotion is non-blocking");
        assert_eq!(
            lib.to_torch_tensor(id).unwrap().location(),
            TensorLocation::PeerGpu { gpu: 1 }
        );
        assert_eq!(lib.migrations(), 1);
    }

    #[test]
    fn reclaim_migrates_and_blocks() {
        let (mut lib, coord) = setup(4);
        let (id, t0) = lib.to_responsive_tensor(payload(512), SimTime::ZERO);
        let old_ptr = lib.to_torch_tensor(id).unwrap();
        coord.reclaim_request(GpuRef::single(GpuId(1)));
        let resume = lib.respond(t0);
        assert!(resume > t0, "release blocks the consumer");
        // Old pointer is stale; the data moved to DRAM intact.
        assert!(lib.read(old_ptr).is_err());
        let fresh = lib.to_torch_tensor(id).unwrap();
        assert_eq!(fresh.location(), TensorLocation::HostDram);
        assert_eq!(lib.read(fresh).unwrap().len(), 512 << 20);
        // Producer sees the lease released.
        assert!(matches!(
            coord.reclaim_status(GpuRef::single(GpuId(1))),
            crate::coordinator::ReclaimStatus::Released { .. }
        ));
    }

    #[test]
    fn free_returns_lease_capacity() {
        let (mut lib, coord) = setup(1);
        let (a, _) = lib.to_responsive_tensor(payload(600), SimTime::ZERO);
        let (b, _) = lib.to_responsive_tensor(payload(600), SimTime::ZERO);
        // Lease (1 GiB) cannot hold both: the second tensor fell to DRAM.
        assert_eq!(
            lib.to_torch_tensor(b).unwrap().location(),
            TensorLocation::HostDram
        );
        assert_eq!(lib.free(a, SimTime::ZERO), Some(mib(600)));
        assert_eq!(coord.used_bytes(), 0);
        // respond() now promotes b into the freed capacity.
        lib.respond(SimTime::from_secs(1));
        assert_eq!(
            lib.to_torch_tensor(b).unwrap().location(),
            TensorLocation::PeerGpu { gpu: 1 }
        );
        assert_eq!(lib.tensor_count(), 1);
    }

    #[test]
    fn double_free_returns_none() {
        let (mut lib, _) = setup(1);
        let (id, _) = lib.to_responsive_tensor(payload(1), SimTime::ZERO);
        assert!(lib.free(id, SimTime::ZERO).is_some());
        assert_eq!(lib.free(id, SimTime::ZERO), None);
    }
}
