//! The coordinator as a standalone service.
//!
//! In the paper the central coordinator is its own program: "the
//! coordinator program exposes a set of REST endpoints" that every GPU's
//! AQUA-LIB instance calls over the southbound interface (§3). This module
//! provides that deployment shape without a network stack: the coordinator
//! runs on its own thread and clients exchange the same serialisable
//! [`CoordinatorRequest`]/[`CoordinatorResponse`] envelope over crossbeam
//! channels. A real HTTP front-end would replace the channel with a socket
//! and nothing else.

use crate::coordinator::{AllocationSite, Coordinator, GpuRef, LeaseId, ReclaimStatus};
use crate::messages::{handle, CoordinatorRequest, CoordinatorResponse};
use crossbeam::channel::{select, unbounded, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

type Envelope = (CoordinatorRequest, Sender<CoordinatorResponse>);

/// A running coordinator service. Dropping it (after all clients are gone)
/// stops the thread.
#[derive(Debug)]
pub struct CoordinatorService {
    worker: Option<JoinHandle<u64>>,
    tx: Option<Sender<Envelope>>,
    shutdown_tx: Option<Sender<()>>,
    coordinator: Arc<Coordinator>,
}

/// A cheap, cloneable, `Send` handle for talking to the service — one per
/// GPU's southbound interface.
#[derive(Debug, Clone)]
pub struct CoordinatorClient {
    tx: Sender<Envelope>,
}

impl CoordinatorService {
    /// Spawns the service thread around a coordinator store.
    ///
    /// # Example
    ///
    /// ```
    /// use aqua_core::coordinator::{Coordinator, GpuRef};
    /// use aqua_core::service::CoordinatorService;
    /// use aqua_sim::gpu::GpuId;
    /// use std::sync::Arc;
    ///
    /// let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
    /// let client = service.client();
    /// let lease = client.lease(GpuRef::single(GpuId(1)), 1 << 30);
    /// assert!(client.allocate(GpuRef::single(GpuId(0)), 1 << 20).is_peer());
    /// let _ = lease;
    /// let served = service.shutdown();
    /// assert_eq!(served, 2);
    /// ```
    pub fn spawn(coordinator: Arc<Coordinator>) -> Self {
        let (tx, rx) = unbounded::<Envelope>();
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let store = Arc::clone(&coordinator);
        let worker = std::thread::spawn(move || {
            let mut served = 0u64;
            loop {
                select! {
                    recv(rx) -> env => match env {
                        Ok((req, reply)) => {
                            let resp = handle(&store, req);
                            // A client that gave up waiting is not an error.
                            let _ = reply.send(resp);
                            served += 1;
                        }
                        Err(_) => break, // every sender gone
                    },
                    recv(shutdown_rx) -> _ => break, // explicit stop (drop)
                }
            }
            served
        });
        CoordinatorService {
            worker: Some(worker),
            tx: Some(tx),
            shutdown_tx: Some(shutdown_tx),
            coordinator,
        }
    }

    /// Creates a client handle.
    pub fn client(&self) -> CoordinatorClient {
        CoordinatorClient {
            tx: self.tx.as_ref().expect("service is running").clone(),
        }
    }

    /// Direct access to the underlying store (for assertions and for
    /// in-process components that bypass the envelope).
    pub fn store(&self) -> Arc<Coordinator> {
        Arc::clone(&self.coordinator)
    }

    /// Stops the service and returns how many requests it served.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread itself panicked.
    pub fn shutdown(mut self) -> u64 {
        self.stop();
        self.worker
            .take()
            .expect("shutdown called once")
            .join()
            .expect("coordinator worker must not panic")
    }

    fn stop(&mut self) {
        self.tx.take(); // no new requests from our own handle
                        // Dropping the shutdown sender closes that channel, which the
                        // worker's select treats as a stop signal — so shutdown completes
                        // even while client handles are still alive.
        self.shutdown_tx.take();
    }
}

impl Drop for CoordinatorService {
    fn drop(&mut self) {
        self.stop();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// Extension helpers on allocation results.
impl AllocationSite {
    /// Returns `true` when placed on a peer GPU's lease.
    pub fn is_peer(&self) -> bool {
        matches!(self, AllocationSite::Peer { .. })
    }
}

impl CoordinatorClient {
    /// Sends one request and waits for the response.
    ///
    /// # Panics
    ///
    /// Panics if the service has shut down.
    pub fn call(&self, req: CoordinatorRequest) -> CoordinatorResponse {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send((req, reply_tx))
            .expect("coordinator service is running");
        reply_rx.recv().expect("coordinator service replies")
    }

    /// `/lease` convenience wrapper.
    pub fn lease(&self, producer: GpuRef, bytes: u64) -> LeaseId {
        match self.call(CoordinatorRequest::Lease { producer, bytes }) {
            CoordinatorResponse::Leased { lease } => lease,
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// `/allocate` convenience wrapper.
    pub fn allocate(&self, consumer: GpuRef, bytes: u64) -> AllocationSite {
        match self.call(CoordinatorRequest::Allocate { consumer, bytes }) {
            CoordinatorResponse::Allocated { site } => site,
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// `/free` convenience wrapper.
    pub fn free(&self, lease: LeaseId, bytes: u64) {
        match self.call(CoordinatorRequest::Free { lease, bytes }) {
            CoordinatorResponse::Ack => {}
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// `/reclaim_request` convenience wrapper.
    pub fn reclaim_request(&self, producer: GpuRef) {
        match self.call(CoordinatorRequest::ReclaimRequest { producer }) {
            CoordinatorResponse::Ack => {}
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// `/reclaim_status` convenience wrapper.
    pub fn reclaim_status(&self, producer: GpuRef) -> ReclaimStatus {
        match self.call(CoordinatorRequest::ReclaimStatusQuery { producer }) {
            CoordinatorResponse::Reclaim { status } => status,
            other => panic!("protocol violation: {other:?}"),
        }
    }

    /// `/respond` convenience wrapper: bytes to migrate off `lease`.
    pub fn respond(&self, lease: LeaseId) -> u64 {
        match self.call(CoordinatorRequest::Respond { lease }) {
            CoordinatorResponse::MustMigrate { bytes } => bytes,
            other => panic!("protocol violation: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::gpu::GpuId;
    use aqua_sim::time::SimTime;

    #[test]
    fn full_protocol_over_the_service() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let client = service.client();
        let producer = GpuRef::single(GpuId(1));
        let consumer = GpuRef::single(GpuId(0));

        let lease = client.lease(producer, 100);
        assert!(client.allocate(consumer, 60).is_peer());
        client.reclaim_request(producer);
        assert_eq!(client.respond(lease), 60);
        client.call(CoordinatorRequest::Release {
            lease,
            bytes: 60,
            at: SimTime::from_secs(1),
        });
        assert!(matches!(
            client.reclaim_status(producer),
            ReclaimStatus::Released { bytes: 100, .. }
        ));
        let served = service.shutdown();
        assert_eq!(served, 6);
    }

    #[test]
    fn concurrent_clients_do_not_lose_capacity() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let producer = GpuRef::single(GpuId(1));
        service.client().lease(producer, 1_000_000);

        let mut handles = Vec::new();
        for _ in 0..8 {
            let client = service.client();
            handles.push(std::thread::spawn(move || {
                let consumer = GpuRef::single(GpuId(0));
                for _ in 0..200 {
                    if let AllocationSite::Peer { lease, .. } = client.allocate(consumer, 128) {
                        client.free(lease, 128);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("client threads succeed");
        }
        assert_eq!(service.store().used_bytes(), 0);
        assert_eq!(service.store().leased_bytes(), 1_000_000);
        let served = service.shutdown();
        assert!(served > 8 * 200);
    }

    #[test]
    fn drop_is_a_clean_shutdown() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let client = service.client();
        client.lease(GpuRef::single(GpuId(1)), 10);
        drop(service); // must not hang or panic
    }
}
