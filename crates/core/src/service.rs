//! The coordinator as a standalone service.
//!
//! In the paper the central coordinator is its own program: "the
//! coordinator program exposes a set of REST endpoints" that every GPU's
//! AQUA-LIB instance calls over the southbound interface (§3). This module
//! provides that deployment shape without a network stack: the coordinator
//! runs on its own thread and clients exchange the same serialisable
//! [`CoordinatorRequest`]/[`CoordinatorResponse`] envelope over crossbeam
//! channels. A real HTTP front-end would replace the channel with a socket
//! and nothing else.

use crate::coordinator::{AllocationSite, Coordinator, GpuRef, LeaseId, ReclaimStatus};
use crate::error::AquaError;
use crate::messages::{handle, CoordinatorRequest, CoordinatorResponse};
use crossbeam::channel::{select, unbounded, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

type Envelope = (CoordinatorRequest, Sender<CoordinatorResponse>);

/// A running coordinator service. Dropping it (after all clients are gone)
/// stops the thread.
#[derive(Debug)]
pub struct CoordinatorService {
    worker: Option<JoinHandle<u64>>,
    tx: Option<Sender<Envelope>>,
    shutdown_tx: Option<Sender<()>>,
    coordinator: Arc<Coordinator>,
}

/// A cheap, cloneable, `Send` handle for talking to the service — one per
/// GPU's southbound interface.
#[derive(Debug, Clone)]
pub struct CoordinatorClient {
    tx: Sender<Envelope>,
}

impl CoordinatorService {
    /// Spawns the service thread around a coordinator store.
    ///
    /// # Example
    ///
    /// ```
    /// use aqua_core::coordinator::{Coordinator, GpuRef};
    /// use aqua_core::service::CoordinatorService;
    /// use aqua_sim::gpu::GpuId;
    /// use std::sync::Arc;
    ///
    /// let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
    /// let client = service.client();
    /// let lease = client.lease(GpuRef::single(GpuId(1)), 1 << 30).unwrap();
    /// assert!(client
    ///     .allocate(GpuRef::single(GpuId(0)), 1 << 20)
    ///     .unwrap()
    ///     .is_peer());
    /// let _ = lease;
    /// let served = service.shutdown();
    /// assert_eq!(served, 2);
    /// ```
    pub fn spawn(coordinator: Arc<Coordinator>) -> Self {
        let (tx, rx) = unbounded::<Envelope>();
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let store = Arc::clone(&coordinator);
        let worker = std::thread::spawn(move || {
            let mut served = 0u64;
            loop {
                select! {
                    recv(rx) -> env => match env {
                        Ok((req, reply)) => {
                            let resp = handle(&store, req);
                            // A client that gave up waiting is not an error.
                            let _ = reply.send(resp);
                            served += 1;
                        }
                        Err(_) => break, // every sender gone
                    },
                    recv(shutdown_rx) -> _ => break, // explicit stop (drop)
                }
            }
            served
        });
        CoordinatorService {
            worker: Some(worker),
            tx: Some(tx),
            shutdown_tx: Some(shutdown_tx),
            coordinator,
        }
    }

    /// Creates a client handle.
    pub fn client(&self) -> CoordinatorClient {
        CoordinatorClient {
            tx: self.tx.as_ref().expect("service is running").clone(),
        }
    }

    /// Direct access to the underlying store (for assertions and for
    /// in-process components that bypass the envelope).
    pub fn store(&self) -> Arc<Coordinator> {
        Arc::clone(&self.coordinator)
    }

    /// Stops the service and returns how many requests it served.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread itself panicked.
    pub fn shutdown(mut self) -> u64 {
        self.stop();
        self.worker
            .take()
            .expect("shutdown called once")
            .join()
            .expect("coordinator worker must not panic")
    }

    fn stop(&mut self) {
        self.tx.take(); // no new requests from our own handle
                        // Dropping the shutdown sender closes that channel, which the
                        // worker's select treats as a stop signal — so shutdown completes
                        // even while client handles are still alive.
        self.shutdown_tx.take();
    }
}

impl Drop for CoordinatorService {
    fn drop(&mut self) {
        self.stop();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// Extension helpers on allocation results.
impl AllocationSite {
    /// Returns `true` when placed on a peer GPU's lease.
    pub fn is_peer(&self) -> bool {
        matches!(self, AllocationSite::Peer { .. })
    }
}

impl CoordinatorClient {
    /// Sends one request and waits for the response.
    ///
    /// # Errors
    ///
    /// [`AquaError::ServiceUnavailable`] when the service has shut down (or
    /// its thread died) — the paper's "coordinator unreachable" case.
    pub fn call(&self, req: CoordinatorRequest) -> Result<CoordinatorResponse, AquaError> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send((req, reply_tx))
            .map_err(|_| AquaError::ServiceUnavailable)?;
        reply_rx.recv().map_err(|_| AquaError::ServiceUnavailable)
    }

    fn violation(expected: &'static str, got: CoordinatorResponse) -> AquaError {
        match got {
            CoordinatorResponse::Error { message } => AquaError::Remote(message),
            other => AquaError::ProtocolViolation {
                expected,
                got: format!("{other:?}"),
            },
        }
    }

    /// `/lease` convenience wrapper.
    pub fn lease(&self, producer: GpuRef, bytes: u64) -> Result<LeaseId, AquaError> {
        match self.call(CoordinatorRequest::Lease { producer, bytes })? {
            CoordinatorResponse::Leased { lease } => Ok(lease),
            other => Err(Self::violation("Leased", other)),
        }
    }

    /// `/allocate` convenience wrapper.
    pub fn allocate(&self, consumer: GpuRef, bytes: u64) -> Result<AllocationSite, AquaError> {
        match self.call(CoordinatorRequest::Allocate { consumer, bytes })? {
            CoordinatorResponse::Allocated { site } => Ok(site),
            other => Err(Self::violation("Allocated", other)),
        }
    }

    /// `/free` convenience wrapper.
    pub fn free(&self, lease: LeaseId, bytes: u64) -> Result<(), AquaError> {
        match self.call(CoordinatorRequest::Free { lease, bytes })? {
            CoordinatorResponse::Ack => Ok(()),
            other => Err(Self::violation("Ack", other)),
        }
    }

    /// `/reclaim_request` convenience wrapper.
    pub fn reclaim_request(&self, producer: GpuRef) -> Result<(), AquaError> {
        match self.call(CoordinatorRequest::ReclaimRequest { producer })? {
            CoordinatorResponse::Ack => Ok(()),
            other => Err(Self::violation("Ack", other)),
        }
    }

    /// `/reclaim_status` convenience wrapper.
    pub fn reclaim_status(&self, producer: GpuRef) -> Result<ReclaimStatus, AquaError> {
        match self.call(CoordinatorRequest::ReclaimStatusQuery { producer })? {
            CoordinatorResponse::Reclaim { status } => Ok(status),
            other => Err(Self::violation("Reclaim", other)),
        }
    }

    /// `/respond` convenience wrapper: bytes to migrate off `lease`.
    pub fn respond(&self, lease: LeaseId) -> Result<u64, AquaError> {
        match self.call(CoordinatorRequest::Respond { lease })? {
            CoordinatorResponse::MustMigrate { bytes } => Ok(bytes),
            other => Err(Self::violation("MustMigrate", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::gpu::GpuId;
    use aqua_sim::time::SimTime;

    #[test]
    fn full_protocol_over_the_service() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let client = service.client();
        let producer = GpuRef::single(GpuId(1));
        let consumer = GpuRef::single(GpuId(0));

        let lease = client.lease(producer, 100).unwrap();
        assert!(client.allocate(consumer, 60).unwrap().is_peer());
        client.reclaim_request(producer).unwrap();
        assert_eq!(client.respond(lease).unwrap(), 60);
        client
            .call(CoordinatorRequest::Release {
                lease,
                bytes: 60,
                at: SimTime::from_secs(1),
            })
            .unwrap();
        assert!(matches!(
            client.reclaim_status(producer).unwrap(),
            ReclaimStatus::Released { bytes: 100, .. }
        ));
        let served = service.shutdown();
        assert_eq!(served, 6);
    }

    #[test]
    fn concurrent_clients_do_not_lose_capacity() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let producer = GpuRef::single(GpuId(1));
        service.client().lease(producer, 1_000_000).unwrap();

        let mut handles = Vec::new();
        for _ in 0..8 {
            let client = service.client();
            handles.push(std::thread::spawn(move || {
                let consumer = GpuRef::single(GpuId(0));
                for _ in 0..200 {
                    if let AllocationSite::Peer { lease, .. } =
                        client.allocate(consumer, 128).unwrap()
                    {
                        client.free(lease, 128).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("client threads succeed");
        }
        assert_eq!(service.store().used_bytes(), 0);
        assert_eq!(service.store().leased_bytes(), 1_000_000);
        let served = service.shutdown();
        assert!(served > 8 * 200);
    }

    #[test]
    fn drop_is_a_clean_shutdown() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let client = service.client();
        client.lease(GpuRef::single(GpuId(1)), 10).unwrap();
        drop(service); // must not hang or panic
    }

    #[test]
    fn calls_after_shutdown_are_errors_not_panics() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let client = service.client();
        client.lease(GpuRef::single(GpuId(1)), 10).unwrap();
        service.shutdown();
        assert_eq!(
            client.lease(GpuRef::single(GpuId(1)), 10),
            Err(AquaError::ServiceUnavailable)
        );
        assert_eq!(
            client.allocate(GpuRef::single(GpuId(0)), 1),
            Err(AquaError::ServiceUnavailable)
        );
    }

    #[test]
    fn remote_errors_surface_as_typed_errors() {
        let service = CoordinatorService::spawn(Arc::new(Coordinator::new()));
        let client = service.client();
        match client.free(LeaseId(42), 1) {
            Err(AquaError::Remote(msg)) => assert!(msg.contains("unknown lease"), "{msg}"),
            other => panic!("expected a remote error, got {other:?}"),
        }
    }
}
